"""Tests for the traffic harness: trace generators, open-loop replay,
outcome accounting, and the observed-vs-predicted comparison.

The tier-1 half of the deadline promise lives here: a replay with
deadlines asserts **zero deadline-violating responses** on the in-process
path (the router path is asserted in ``test_router_deadline.py``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.serve import (AdmissionController, BatchingConfig, CapacityModel,
                         MicroBatcher, Server, ServiceModel,
                         TrafficGenerator, adversarial_trace, bursty_trace,
                         compare_prediction, diurnal_trace, poisson_trace)
from repro.serve.traffic import OUTCOMES

BASE_S = 0.001
PER_ROW_S = 0.0001


def sleepy_predict(rows: np.ndarray) -> np.ndarray:
    rows = np.atleast_2d(rows)
    time.sleep(BASE_S + PER_ROW_S * len(rows))
    return np.full((len(rows), 3), 1.0 / 3.0)


def fast_config(**kwargs) -> BatchingConfig:
    kwargs.setdefault("max_batch_size", 16)
    kwargs.setdefault("max_latency_ms", 2.0)
    kwargs.setdefault("cache_size", 0)
    return BatchingConfig(**kwargs)


class TestTraces:
    def test_poisson_rate_and_ordering(self):
        trace = poisson_trace(rate=200.0, duration_s=2.0, seed=3)
        assert np.all(np.diff(trace) >= 0)
        assert np.all((trace >= 0) & (trace < 2.0))
        assert len(trace) == pytest.approx(400, rel=0.3)

    def test_poisson_is_seed_deterministic(self):
        assert np.array_equal(poisson_trace(100.0, 1.0, seed=5),
                              poisson_trace(100.0, 1.0, seed=5))

    def test_poisson_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            poisson_trace(0.0, 1.0)
        with pytest.raises(ValueError):
            poisson_trace(10.0, -1.0)

    def test_bursty_carries_more_arrivals_than_its_floor(self):
        base = poisson_trace(50.0, 2.0, seed=0)
        bursty = bursty_trace(base_rate=50.0, burst_rate=500.0,
                              duration_s=2.0, period_s=0.5,
                              burst_fraction=0.2, seed=0)
        assert len(bursty) > len(base) * 1.5
        assert np.all(np.diff(bursty) >= 0)

    def test_bursty_rejects_inverted_rates(self):
        with pytest.raises(ValueError, match="burst_rate"):
            bursty_trace(base_rate=100.0, burst_rate=10.0, duration_s=1.0)

    def test_diurnal_mean_rate_holds(self):
        trace = diurnal_trace(mean_rate=150.0, duration_s=4.0, period_s=2.0,
                              amplitude=0.8, seed=1)
        assert len(trace) == pytest.approx(600, rel=0.3)
        assert np.all(np.diff(trace) >= 0)

    def test_diurnal_peak_to_trough_modulation(self):
        trace = diurnal_trace(mean_rate=200.0, duration_s=8.0, period_s=8.0,
                              amplitude=0.9, seed=2)
        # One full cycle: the first half (rising sine) must carry far more
        # arrivals than the second half (falling below the mean).
        first, second = np.sum(trace < 4.0), np.sum(trace >= 4.0)
        assert first > 1.5 * second

    def test_diurnal_rejects_bad_amplitude(self):
        with pytest.raises(ValueError, match="amplitude"):
            diurnal_trace(100.0, 1.0, amplitude=1.5)

    def test_adversarial_bunches_arrivals(self):
        trace = adversarial_trace(rate=200.0, duration_s=2.0,
                                  spike_every_s=0.5, seed=4)
        assert len(trace) == pytest.approx(400, rel=0.3)
        # Nearly every gap is ~0 (inside a spike); the largest gap is the
        # inter-spike silence.
        gaps = np.diff(trace)
        assert np.median(gaps) < 1e-3
        assert gaps.max() > 0.3


class TestOpenLoopReplay:
    def test_all_served_below_capacity(self):
        with MicroBatcher(sleepy_predict, fast_config()) as batcher:
            generator = TrafficGenerator(batcher, input_dim=4, seed=0)
            report = generator.run(poisson_trace(150.0, 1.0, seed=1))
        assert report.sent == report.ok
        assert report.shed_rate() == 0.0
        assert report.throughput() > 0
        assert 0 < report.p50_ms() <= report.p99_ms()
        summary = report.summary()
        assert summary["deadline_violations"] == 0
        assert sum(summary[outcome] for outcome in OUTCOMES) == report.sent

    def test_outcomes_partition_the_trace(self):
        """Every arrival lands in exactly one outcome bucket — the
        report-level mirror of the batcher's counter-conservation law."""
        with MicroBatcher(sleepy_predict, fast_config()) as batcher:
            generator = TrafficGenerator(batcher, input_dim=4, seed=0)
            report = generator.run(
                adversarial_trace(300.0, 0.6, spike_every_s=0.2, seed=2),
                deadline_ms=40.0)
        counts = {outcome: report.count(outcome) for outcome in OUTCOMES}
        assert sum(counts.values()) == report.sent
        assert not report.errors

    def test_zero_deadline_violations_in_process(self):
        """Tier-1 half of the deadline promise: under adversarial load with
        deadlines most requests expire — and **none** of the successful
        ones completes after its own deadline."""
        config = fast_config(max_batch_size=4, max_latency_ms=1.0)
        with MicroBatcher(sleepy_predict, config) as batcher:
            generator = TrafficGenerator(batcher, input_dim=4, seed=0)
            report = generator.run(
                adversarial_trace(500.0, 0.5, spike_every_s=0.25, seed=3),
                deadline_ms=30.0)
        assert report.count("expired") > 0          # the load really hurt
        assert report.deadline_violations() == 0    # and nothing lied
        # Expired requests surface as DeadlineExceeded, not generic errors.
        assert report.count("error") == 0

    def test_doomed_deadline_expires_everything(self):
        with MicroBatcher(sleepy_predict, fast_config()) as batcher:
            generator = TrafficGenerator(batcher, input_dim=4, seed=0)
            report = generator.run(poisson_trace(100.0, 0.3, seed=4),
                                   deadline_ms=0.0001)
        assert report.ok == 0
        assert report.count("expired") == report.sent

    def test_server_target_resolves_input_dim_from_registry(self, servable):
        with Server(batching=fast_config()) as server:
            server.register("default", servable)
            generator = TrafficGenerator(server, seed=0)
            report = generator.run(poisson_trace(80.0, 0.5, seed=5))
            stats = server.stats()
        assert report.ok == report.sent
        served = sum(entry["served"] for entry in stats.values())
        assert served == report.sent

    def test_admission_sheds_surface_as_overloaded(self, servable):
        model = CapacityModel(
            ServiceModel(base_s=BASE_S, per_row_s=PER_ROW_S), cpus=1)
        admission = AdmissionController(model, fast_config(),
                                        max_delay_ms=-1.0)  # shed everything
        with Server(batching=fast_config(), admission=admission) as server:
            server.register("default", servable)
            generator = TrafficGenerator(server, seed=0)
            report = generator.run(poisson_trace(100.0, 0.3, seed=6))
        assert report.count("overloaded") == report.sent
        assert report.shed_rate() == 1.0

    def test_empty_trace_is_rejected(self):
        with MicroBatcher(sleepy_predict, fast_config()) as batcher:
            generator = TrafficGenerator(batcher, input_dim=4)
            with pytest.raises(ValueError, match="empty"):
                generator.run([])


class TestComparePrediction:
    def test_model_agrees_with_observation_on_its_home_turf(self):
        """A Poisson replay at moderate utilization must land inside the
        documented error bounds — the same check the smoke harness runs,
        kept cheap here (sleep-based service, one second of traffic)."""
        service = ServiceModel(base_s=BASE_S, per_row_s=PER_ROW_S,
                               overhead_s=2e-5)
        model = CapacityModel(service, cpus=1)
        config = fast_config()
        rate = 0.35 * model.capacity(config)
        with MicroBatcher(sleepy_predict, config) as batcher:
            generator = TrafficGenerator(batcher, input_dim=4, seed=0)
            report = generator.run(poisson_trace(rate, 1.5, seed=7))
        prediction = model.predict(config, rate)
        errors = compare_prediction(report, prediction)
        assert errors["throughput_rel_error"] < 0.35
        assert errors["p99_rel_error"] < 0.75
        assert errors["shed_rate_observed"] == 0.0

    def test_unobservable_metrics_compare_as_nan(self):
        service = ServiceModel(base_s=BASE_S, per_row_s=PER_ROW_S)
        model = CapacityModel(service, cpus=1)
        config = fast_config()
        with MicroBatcher(sleepy_predict, config) as batcher:
            generator = TrafficGenerator(batcher, input_dim=4, seed=0)
            report = generator.run(poisson_trace(50.0, 0.2, seed=8),
                                   deadline_ms=0.0001)  # nothing completes
        errors = compare_prediction(report, model.predict(config, 50.0))
        assert np.isnan(errors["p50_rel_error"])
        assert np.isnan(errors["p99_rel_error"])
