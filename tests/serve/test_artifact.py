"""Tests for the versioned servable artifact format."""

import json
import os

import numpy as np
import pytest

from repro.nn import default_dtype
from repro.serve import (ArtifactError, SCHEMA_VERSION, export_end_model,
                         load_servable, read_manifest)
from repro.serve.artifact import MANIFEST_NAME, WEIGHTS_NAME

from .conftest import CLASS_NAMES, NUM_CLASSES, SPEC, make_end_model


class TestExport:
    def test_writes_manifest_and_weights(self, artifact_dir):
        assert os.path.exists(os.path.join(artifact_dir, MANIFEST_NAME))
        assert os.path.exists(os.path.join(artifact_dir, WEIGHTS_NAME))

    def test_manifest_contents(self, artifact_dir):
        manifest = read_manifest(artifact_dir)
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["format"] == "taglets-end-model"
        assert manifest["class_names"] == CLASS_NAMES
        assert manifest["num_classes"] == NUM_CLASSES
        assert manifest["backbone"]["name"] == SPEC.name
        assert manifest["backbone"]["hidden_dims"] == list(SPEC.hidden_dims)
        assert manifest["dtype"] == "float64"
        assert manifest["metrics"]["test_accuracy"] == 0.91
        assert manifest["num_parameters"] > 0
        # Every weight is described without opening the archive.
        assert set(manifest["weights"]) and all(
            {"shape", "dtype"} <= set(entry)
            for entry in manifest["weights"].values())

    def test_class_name_count_must_match(self, tmp_path, end_model):
        with pytest.raises(ValueError, match="class names"):
            export_end_model(end_model, str(tmp_path / "bad"),
                             class_names=["just_one"])

    def test_bare_end_model_requires_class_names(self, tmp_path, end_model):
        with pytest.raises(ValueError, match="class_names"):
            export_end_model(end_model, str(tmp_path / "bad"))

    def test_rejects_non_end_model(self, tmp_path):
        with pytest.raises(TypeError):
            export_end_model(object(), str(tmp_path / "bad"),
                             class_names=CLASS_NAMES)


class TestRoundTrip:
    def test_float64_predictions_bit_identical(self, end_model, servable,
                                               features):
        offline = end_model.predict_proba(features, batch_size=None)
        assert np.array_equal(servable.predict_proba(features), offline)
        assert np.array_equal(servable.predict(features),
                              offline.argmax(axis=1))

    def test_float32_round_trip(self, tmp_path, features):
        """Export/load under the float32 fast mode stays bit-identical."""
        with default_dtype("float32"):
            end_model = make_end_model(seed=3)
            offline = end_model.predict_proba(
                np.asarray(features, dtype=np.float32), batch_size=None)
            path = export_end_model(end_model, str(tmp_path / "f32"),
                                    class_names=CLASS_NAMES)
        servable = load_servable(path)
        assert servable.dtype == np.float32
        # Served from a float64-default process, the servable still runs
        # in its own dtype and reproduces offline float32 inference exactly.
        served = servable.predict_proba(features)
        assert served.dtype == np.float32
        assert np.array_equal(served, offline)

    def test_single_row_matches_batched_rows(self, servable, features):
        """The gemv/gemm split must not leak into served results."""
        full = servable.predict_proba(features)
        row = servable.predict_proba(features[:1])
        assert np.array_equal(row, full[:1])

    def test_predict_names(self, servable, features):
        names = servable.predict_names(features[:5])
        indices = servable.predict(features[:5])
        assert names == [CLASS_NAMES[i] for i in indices]

    def test_describe_is_json_serializable(self, servable):
        description = servable.describe()
        assert json.dumps(description)
        assert description["fingerprint"] == servable.fingerprint


class TestValidation:
    def test_missing_artifact(self, tmp_path):
        with pytest.raises(ArtifactError, match="no servable artifact"):
            load_servable(str(tmp_path / "nope"))

    def test_corrupt_manifest(self, artifact_dir):
        with open(os.path.join(artifact_dir, MANIFEST_NAME), "w") as handle:
            handle.write("{not json")
        with pytest.raises(ArtifactError, match="corrupt manifest"):
            load_servable(artifact_dir)

    def test_unknown_schema_version(self, artifact_dir):
        manifest_path = os.path.join(artifact_dir, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["schema_version"] = SCHEMA_VERSION + 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ArtifactError, match="schema version"):
            load_servable(artifact_dir)

    def test_missing_required_key(self, artifact_dir):
        manifest_path = os.path.join(artifact_dir, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        del manifest["weights_digest"]
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ArtifactError, match="missing required keys"):
            load_servable(artifact_dir)

    def test_tampered_weights_fail_digest(self, artifact_dir):
        weights_path = os.path.join(artifact_dir, WEIGHTS_NAME)
        state = np.load(weights_path)
        tampered = {name: state[name].copy() for name in state.files}
        first = next(iter(tampered))
        tampered[first] = tampered[first] + 1.0
        np.savez(weights_path, **tampered)
        with pytest.raises(ArtifactError, match="digest"):
            load_servable(artifact_dir)

    def test_digest_check_can_be_skipped(self, artifact_dir):
        weights_path = os.path.join(artifact_dir, WEIGHTS_NAME)
        state = np.load(weights_path)
        tampered = {name: state[name].copy() for name in state.files}
        first = next(iter(tampered))
        tampered[first] = tampered[first] + 1.0
        np.savez(weights_path, **tampered)
        assert load_servable(artifact_dir, verify_digest=False) is not None

    def test_wrong_architecture_names_parameter(self, tmp_path, artifact_dir):
        """A weights/manifest mismatch fails with the offending key named."""
        manifest_path = os.path.join(artifact_dir, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["backbone"]["hidden_dims"] = [8]   # not what the weights hold
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ArtifactError, match="encoder.trunk"):
            load_servable(artifact_dir, verify_digest=False)


class TestPipelineExport:
    """The real train → export hook → load path (Controller.export_path)."""

    def test_served_bit_identical_to_offline_end_model(self, trained_export):
        result, split, path = trained_export
        servable = load_servable(path)
        offline = result.end_model.predict_proba(split.test_features,
                                                 batch_size=None)
        assert np.array_equal(servable.predict_proba(split.test_features),
                              offline)

    def test_manifest_records_task_metadata(self, trained_export):
        result, split, path = trained_export
        manifest = read_manifest(path)
        assert manifest["class_names"] == [c.name for c in split.classes]
        assert manifest["task_name"] == result.task_name
        offline_accuracy = result.end_model_accuracy(split.test_features,
                                                     split.test_labels)
        assert manifest["metrics"]["test_accuracy"] == pytest.approx(
            offline_accuracy)
