"""Tests for traffic shaping: priorities, deadlines, multi-worker batchers."""

import threading
import time

import numpy as np
import pytest

from repro.serve import BatchingConfig, DeadlineExceeded, MicroBatcher
from repro.serve.batching import run_at_quantum

from .conftest import GatedModel


class TestPriorities:
    def _drain_order(self, submissions):
        """Submit ``(row_value, priority)`` pairs while the worker is parked
        in a forward; return the order the model then served them in."""
        model = GatedModel()
        config = BatchingConfig(max_batch_size=1, max_latency_ms=0,
                                cache_size=0)
        with MicroBatcher(model, config) as batcher:
            plug = batcher.submit(np.zeros(2))
            assert model.entered.wait(timeout=10)
            futures = [batcher.submit(np.full(2, float(value)),
                                      priority=priority)
                       for value, priority in submissions]
            model.release.set()
            plug.result(timeout=10)
            for future in futures:
                future.result(timeout=10)
        return [int(call[0, 0]) for call in model.calls[1:]]

    def test_higher_priority_drains_first(self):
        order = self._drain_order([(1, 0), (2, 5), (3, 1)])
        assert order == [2, 3, 1]

    def test_fifo_within_a_priority_level(self):
        order = self._drain_order([(1, 0), (2, 0), (3, 0)])
        assert order == [1, 2, 3]

    def test_default_priority_preserves_arrival_order(self):
        order = self._drain_order([(i, 0) for i in range(1, 6)])
        assert order == [1, 2, 3, 4, 5]


class TestDeadlines:
    def test_expired_request_fails_fast_and_skips_the_forward(self):
        model = GatedModel()
        config = BatchingConfig(max_batch_size=8, max_latency_ms=5,
                                cache_size=0, pad_to_max_batch=False)
        with MicroBatcher(model, config) as batcher:
            plug = batcher.submit(np.zeros(3))
            assert model.entered.wait(timeout=10)
            doomed = batcher.submit(np.full(3, 7.0), deadline_ms=30)
            survivor = batcher.submit(np.full(3, 9.0), deadline_ms=60_000)
            time.sleep(0.08)                     # let the deadline pass
            model.release.set()
            plug.result(timeout=10)
            with pytest.raises(DeadlineExceeded, match="deadline"):
                doomed.result(timeout=10)
            # The batch-mate with a live deadline is served normally.
            assert np.array_equal(survivor.result(timeout=10), np.full(3, 9.0))
        # The expired rows never occupied a forward.
        assert not any((call == 7.0).all() for call in model.calls)
        stats = batcher.stats()
        assert stats["expired"] == 1
        assert stats["requests"] == 3

    def test_deadline_expiring_between_gather_and_forward(self):
        """The fuse-time re-check: a request gathered *live* whose deadline
        passes while the batch opener waits out ``max_latency_ms`` must be
        expired at fuse time — never occupying forward compute — while its
        batch-mates are served unharmed."""
        calls = []

        def recording(batch):
            calls.append(np.array(batch, copy=True))
            return batch.copy()

        # The doomed request opens the batch (so it is gathered while its
        # deadline is still live), then the 150 ms gather window outlives
        # its 40 ms deadline.
        config = BatchingConfig(max_batch_size=8, max_latency_ms=150,
                                cache_size=0, pad_to_max_batch=False)
        with MicroBatcher(recording, config) as batcher:
            doomed = batcher.submit(np.full(3, 7.0), deadline_ms=40)
            survivor = batcher.submit(np.full(3, 9.0), deadline_ms=60_000)
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=10)
            assert np.array_equal(survivor.result(timeout=10),
                                  np.full(3, 9.0))
        # The doomed rows never reached the model.
        assert not any((call == 7.0).all() for call in calls)
        stats = batcher.stats()
        assert stats["expired"] == 1
        assert stats["served"] == 1
        assert stats["requests"] == 2

    def test_deadline_expiring_during_the_forward(self):
        """The delivery-time re-check: a request whose forward *finishes*
        after its deadline must fail with DeadlineExceeded — a request
        never completes successfully after its own deadline — but the
        computed result still lands in the cache for future callers."""
        model = GatedModel()
        config = BatchingConfig(max_batch_size=1, max_latency_ms=0,
                                cache_size=64)
        row = np.full(3, 5.0)
        with MicroBatcher(model, config) as batcher:
            late = batcher.submit(row, deadline_ms=40)
            assert model.entered.wait(timeout=10)  # forward in flight
            time.sleep(0.08)                       # deadline passes mid-forward
            model.release.set()
            with pytest.raises(DeadlineExceeded, match="deadline"):
                late.result(timeout=10)
            # The work was not wasted: the same input now hits the cache.
            assert np.array_equal(batcher.submit(row).result(timeout=10), row)
            stats = batcher.stats()
        assert stats["expired"] == 1
        assert stats["cache_hits"] == 1
        assert len(model.calls) == 1               # served from cache, not re-run

    def test_already_expired_deadline_fails_at_submit(self):
        with MicroBatcher(lambda b: b.copy(),
                          BatchingConfig(cache_size=0)) as batcher:
            future = batcher.submit(np.ones(2), deadline_ms=-5)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=10)

    def test_generous_deadline_is_met(self):
        with MicroBatcher(lambda b: b * 2,
                          BatchingConfig(cache_size=0)) as batcher:
            result = batcher.predict(np.ones(3), timeout=10,
                                     deadline_ms=60_000)
        assert np.array_equal(result, np.full(3, 2.0))


class TestMultiWorker:
    def test_results_bit_identical_to_quantized_offline(self):
        """Bit-determinism survives concurrent workers: every forward runs
        at the fixed quantum, and a row's result is a pure function of
        (row, weights, batch row count) — not of which worker ran it."""
        rng = np.random.default_rng(21)
        weights = rng.normal(size=(6, 4))

        def forward(batch):
            return batch @ weights

        inputs = rng.normal(size=(200, 6))
        reference = run_at_quantum(forward, inputs, 8)
        config = BatchingConfig(max_batch_size=8, max_latency_ms=2,
                                cache_size=0, num_workers=3)
        results = np.zeros((200, 4))
        errors = []
        with MicroBatcher(forward, config) as batcher:

            def client(indices):
                try:
                    for i in indices:
                        results[i] = batcher.predict(inputs[i], timeout=30)
                except Exception as error:  # pragma: no cover - reporting
                    errors.append(error)

            threads = [threading.Thread(target=client,
                                        args=(range(k, 200, 4),))
                       for k in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert np.array_equal(results, reference)

    def test_workers_overlap_forwards(self):
        """Two workers must genuinely run two forwards at the same time
        (forwards sleep, releasing the GIL like a BLAS call does)."""
        lock = threading.Lock()
        state = {"active": 0, "max_active": 0}

        def slow(batch):
            with lock:
                state["active"] += 1
                state["max_active"] = max(state["max_active"],
                                          state["active"])
            time.sleep(0.05)
            with lock:
                state["active"] -= 1
            return batch.copy()

        config = BatchingConfig(max_batch_size=1, max_latency_ms=0,
                                cache_size=0, num_workers=2)
        with MicroBatcher(slow, config) as batcher:
            futures = [batcher.submit(np.ones(2)) for _ in range(6)]
            for future in futures:
                future.result(timeout=30)
        assert state["max_active"] == 2

    def test_per_worker_stats_roll_up(self):
        config = BatchingConfig(max_batch_size=4, max_latency_ms=1,
                                cache_size=0, num_workers=2)
        with MicroBatcher(lambda b: b.copy(), config) as batcher:
            futures = [batcher.submit(np.ones(2)) for _ in range(40)]
            for future in futures:
                future.result(timeout=30)
            stats = batcher.stats()
        assert stats["num_workers"] == 2
        assert stats["requests"] == 40
        per_worker = stats["per_worker"]
        assert len(per_worker) == 2
        assert sum(w["batches"] for w in per_worker) == stats["batches"]
        assert sum(w["batched_examples"] for w in per_worker) == 40

    def test_close_answers_everything_with_multiple_workers(self):
        for _ in range(5):
            batcher = MicroBatcher(lambda b: b.copy(),
                                   BatchingConfig(max_latency_ms=0,
                                                  cache_size=0,
                                                  num_workers=3))
            futures = [batcher.submit(np.ones(2)) for _ in range(30)]
            batcher.close()
            for future in futures:
                assert np.array_equal(future.result(timeout=10), np.ones(2))

    def test_single_worker_stats_have_no_per_worker_breakdown(self):
        with MicroBatcher(lambda b: b.copy(),
                          BatchingConfig(cache_size=0)) as batcher:
            batcher.predict(np.ones(2), timeout=10)
            stats = batcher.stats()
        assert stats["num_workers"] == 1
        assert "per_worker" not in stats
