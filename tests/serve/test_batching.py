"""Tests for the dynamic micro-batching engine."""

import threading
import time

import numpy as np
import pytest

from repro.serve import (BatchingConfig, MicroBatcher, ShuttingDown,
                         input_digest)

from .conftest import GatedModel


def square_rows(batch: np.ndarray) -> np.ndarray:
    """A stand-in 'model': rows are independent, like any batched forward."""
    return np.stack([row * row for row in batch])


class TestConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            BatchingConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchingConfig(max_latency_ms=-1)
        with pytest.raises(ValueError):
            BatchingConfig(cache_size=-1)
        with pytest.raises(ValueError):
            BatchingConfig(num_workers=0)


class TestFanOutFanIn:
    def test_single_example_requests(self):
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(50, 6))
        with MicroBatcher(square_rows, BatchingConfig(cache_size=0)) as batcher:
            futures = [batcher.submit(row) for row in inputs]
            results = np.stack([f.result(timeout=10) for f in futures])
        assert np.array_equal(results, inputs * inputs)

    def test_multi_row_requests_keep_shape(self):
        rng = np.random.default_rng(1)
        blocks = [rng.normal(size=(n, 4)) for n in (1, 3, 7, 2)]
        with MicroBatcher(square_rows, BatchingConfig(cache_size=0)) as batcher:
            futures = [batcher.submit(block) for block in blocks]
            for block, future in zip(blocks, futures):
                result = future.result(timeout=10)
                assert result.shape == block.shape
                assert np.array_equal(result, block * block)

    def test_requests_actually_get_batched(self):
        """Many queued requests must collapse into far fewer forwards."""
        calls = []

        def record(batch):
            calls.append(len(batch))
            return batch.copy()

        config = BatchingConfig(max_batch_size=16, max_latency_ms=50,
                                cache_size=0, pad_to_max_batch=False)
        rng = np.random.default_rng(2)
        inputs = rng.normal(size=(64, 3))
        with MicroBatcher(record, config) as batcher:
            futures = [batcher.submit(row) for row in inputs]
            for future in futures:
                future.result(timeout=10)
        stats_batches = len(calls)
        assert stats_batches < 64              # genuinely fused
        assert max(calls) <= 16                # respects max_batch_size
        assert sum(calls) == 64                # nothing lost or duplicated

    def test_padded_forwards_run_at_the_fixed_quantum(self):
        """With padding on (the default), every model call sees exactly
        ``max_batch_size`` rows regardless of traffic."""
        calls = []

        def record(batch):
            calls.append(len(batch))
            return batch.copy()

        config = BatchingConfig(max_batch_size=8, max_latency_ms=5,
                                cache_size=0)
        rng = np.random.default_rng(4)
        inputs = rng.normal(size=(21, 3))
        with MicroBatcher(record, config) as batcher:
            futures = [batcher.submit(row) for row in inputs]
            results = np.stack([f.result(timeout=10) for f in futures])
        assert set(calls) == {8}               # every forward at the quantum
        assert np.array_equal(results, inputs)  # padding never leaks out

    def test_max_latency_flushes_partial_batches(self):
        config = BatchingConfig(max_batch_size=1024, max_latency_ms=5,
                                cache_size=0)
        with MicroBatcher(square_rows, config) as batcher:
            start = time.perf_counter()
            result = batcher.submit(np.ones(3)).result(timeout=10)
            elapsed = time.perf_counter() - start
        assert np.array_equal(result, np.ones(3))
        assert elapsed < 5.0  # the deadline, not the full queue, flushed it

    def test_concurrent_submitters(self):
        rng = np.random.default_rng(3)
        inputs = rng.normal(size=(200, 5))
        results = np.zeros_like(inputs)
        errors = []

        with MicroBatcher(square_rows,
                          BatchingConfig(max_batch_size=32,
                                         cache_size=0)) as batcher:

            def client(indices):
                try:
                    for i in indices:
                        results[i] = batcher.predict(inputs[i], timeout=10)
                except Exception as error:  # pragma: no cover - reporting
                    errors.append(error)

            threads = [threading.Thread(target=client,
                                        args=(range(k, 200, 4),))
                       for k in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert np.array_equal(results, inputs * inputs)


class TestErrorsAndLifecycle:
    def test_forward_failure_propagates_to_every_future(self):
        def explode(batch):
            raise RuntimeError("model fell over")

        with MicroBatcher(explode, BatchingConfig(cache_size=0)) as batcher:
            futures = [batcher.submit(np.ones(2)) for _ in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="fell over"):
                    future.result(timeout=10)

    def test_failure_does_not_kill_the_worker(self):
        state = {"fail": True}

        def flaky(batch):
            if state["fail"]:
                state["fail"] = False
                raise RuntimeError("transient")
            return batch.copy()

        with MicroBatcher(flaky, BatchingConfig(cache_size=0)) as batcher:
            with pytest.raises(RuntimeError):
                batcher.predict(np.ones(2), timeout=10)
            assert np.array_equal(batcher.predict(np.ones(2), timeout=10),
                                  np.ones(2))

    def test_rejects_bad_shapes(self):
        with MicroBatcher(square_rows) as batcher:
            with pytest.raises(ValueError):
                batcher.submit(np.ones((2, 2, 2)))
            with pytest.raises(ValueError):
                batcher.submit(np.ones((0, 4)))

    def test_submit_close_race_never_strands_a_future(self):
        """A future obtained from submit() always resolves, even when
        close() lands concurrently — late submits raise instead of hanging."""
        for trial in range(20):
            batcher = MicroBatcher(square_rows,
                                   BatchingConfig(max_latency_ms=0,
                                                  cache_size=0))
            futures, errors = [], []

            def submitter():
                try:
                    for _ in range(50):
                        futures.append(batcher.submit(np.ones(2)))
                except RuntimeError:
                    pass   # closed mid-stream: acceptable, just never hang
                except Exception as error:  # pragma: no cover - reporting
                    errors.append(error)

            thread = threading.Thread(target=submitter)
            thread.start()
            batcher.close()
            thread.join(timeout=10)
            assert not errors
            for future in futures:
                assert np.array_equal(future.result(timeout=5), np.ones(2))

    def test_close_answers_queued_work_then_rejects_new(self):
        batcher = MicroBatcher(square_rows, BatchingConfig(cache_size=0))
        future = batcher.submit(np.ones(3))
        batcher.close()
        assert np.array_equal(future.result(timeout=10), np.ones(3))
        with pytest.raises(ShuttingDown, match="closed"):
            batcher.submit(np.ones(3))

    def test_close_without_drain_fails_pending_fast(self):
        """Regression: ``close(drain=False)`` used to leave queued futures
        hanging forever behind a wedged forward.  Now they fail fast with
        :class:`ShuttingDown` while the in-flight request still answers."""
        model = GatedModel()
        batcher = MicroBatcher(model, BatchingConfig(max_batch_size=1,
                                                     max_latency_ms=0,
                                                     cache_size=0))
        in_flight = batcher.submit(np.ones(2))
        assert model.entered.wait(timeout=10)   # worker parked in a forward
        queued = [batcher.submit(np.full(2, i)) for i in range(3)]
        assert batcher.queue_depth() == 3

        closer = threading.Thread(target=batcher.close,
                                  kwargs={"drain": False})
        closer.start()
        # Shed immediately — NOT after the wedged forward finishes.
        for future in queued:
            with pytest.raises(ShuttingDown):
                future.result(timeout=10)
        assert batcher.queue_depth() == 0
        assert batcher.snapshot().shed == 3

        model.release.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        # The request already inside the forward still answers normally...
        assert np.array_equal(in_flight.result(timeout=10), np.ones(2))
        # ...and late submits fail fast too, with the same typed error.
        with pytest.raises(ShuttingDown):
            batcher.submit(np.ones(2))

    def test_queue_depth_and_workers_alive_track_reality(self):
        model = GatedModel()
        batcher = MicroBatcher(model, BatchingConfig(max_batch_size=1,
                                                     max_latency_ms=0,
                                                     cache_size=0,
                                                     num_workers=2))
        assert batcher.workers_alive() == 2
        assert batcher.queue_depth() == 0
        first = batcher.submit(np.ones(2))
        assert model.entered.wait(timeout=10)
        model.release.set()
        assert np.array_equal(first.result(timeout=10), np.ones(2))
        batcher.close()
        assert batcher.workers_alive() == 0
        assert not batcher.is_draining()


class TestRequestValidation:
    """Regression: one malformed request must never poison its batch-mates.

    Width and dtype are validated at ``submit`` (before the request can be
    fused), so the bad request fails alone with ``ValueError`` and every
    innocent request still resolves.
    """

    def test_wrong_width_fails_alone_while_batchmates_succeed(self):
        model = GatedModel()
        config = BatchingConfig(max_batch_size=16, max_latency_ms=50,
                                cache_size=0, pad_to_max_batch=False)
        rng = np.random.default_rng(11)
        good = rng.normal(size=(6, 4))
        with MicroBatcher(model, config, input_dim=4) as batcher:
            # Park the worker inside a forward, then stage a batch of valid
            # requests with one malformed request submitted among them.
            plug = batcher.submit(np.ones(4))
            assert model.entered.wait(timeout=10)
            futures = [batcher.submit(row) for row in good[:3]]
            with pytest.raises(ValueError, match="4"):
                batcher.submit(np.ones(7))        # wrong feature width
            futures += [batcher.submit(row) for row in good[3:]]
            model.release.set()
            plug.result(timeout=10)
            results = np.stack([f.result(timeout=10) for f in futures])
        # Every valid request resolved correctly; the bad one never reached
        # a forward (every call the model saw was 4 wide).
        assert np.array_equal(results, good)
        assert all(call.shape[1] == 4 for call in model.calls)
        assert batcher.stats()["rejected"] == 1

    def test_wrong_ndim_and_empty_still_rejected(self):
        with MicroBatcher(square_rows, input_dim=4) as batcher:
            with pytest.raises(ValueError):
                batcher.submit(np.ones((2, 2, 2)))
            with pytest.raises(ValueError):
                batcher.submit(np.ones((0, 4)))

    def test_uncastable_dtype_rejected(self):
        with MicroBatcher(square_rows, input_dim=3,
                          dtype=np.float64) as batcher:
            with pytest.raises(ValueError, match="dtype"):
                batcher.submit(np.array(["a", "b", "c"]))
        assert batcher.snapshot().rejected == 1

    def test_mixed_dtypes_normalized_before_fusing(self):
        """Regression: a float32 request fused with float64 ones used to
        promote the whole batch; now every request is normalized to the
        servable dtype at submit, so the fused forward always sees it."""
        model = GatedModel()
        config = BatchingConfig(max_batch_size=8, max_latency_ms=50,
                                cache_size=0, pad_to_max_batch=False)
        with MicroBatcher(model, config, input_dim=3,
                          dtype=np.float64) as batcher:
            plug = batcher.submit(np.ones(3))
            assert model.entered.wait(timeout=10)
            f32 = batcher.submit(np.ones(3, dtype=np.float32) * 2)
            f64 = batcher.submit(np.ones(3) * 3)
            model.release.set()
            plug.result(timeout=10)
            f32.result(timeout=10)
            f64.result(timeout=10)
        assert all(call.dtype == np.float64 for call in model.calls)

    def test_identical_rows_share_one_cache_entry_across_dtypes(self):
        """Regression: the cache digest was keyed on the *submitted* dtype,
        so float32 vs float64 submissions of the same row got distinct
        entries for bitwise-identical predictions."""
        calls = []

        def record(batch):
            calls.append(len(batch))
            return batch * batch

        x64 = np.arange(4, dtype=np.float64)
        with MicroBatcher(record, BatchingConfig(cache_size=8),
                          dtype=np.float64) as batcher:
            first = batcher.predict(x64, timeout=10)
            second = batcher.predict(x64.astype(np.float32), timeout=10)
            stats = batcher.stats()
        assert np.array_equal(first, second)
        assert stats["cache_hits"] == 1           # not a second miss
        assert stats["cache_misses"] == 1
        assert len(calls) == 1                    # one forward total


class TestBacklogScooping:
    """Regression: a closed gather window must not cap batches at one row.

    ``max_latency_ms`` bounds how long a batch *waits* for company.  It
    used to also stop the worker from fusing requests already sitting in
    the queue — with ``max_latency_ms=0`` every forward ran a single row
    no matter how deep the backlog, so a batch-B config melted down at
    ``1/s(B)`` req/s instead of reaching ``B/s(B)``.  Queued requests are
    free to batch: scooping them adds zero latency.
    """

    def test_window_zero_fuses_the_backlog(self):
        model = GatedModel()
        config = BatchingConfig(max_batch_size=4, max_latency_ms=0,
                                cache_size=0, pad_to_max_batch=False)
        with MicroBatcher(model, config) as batcher:
            plug = batcher.submit(np.ones(3))
            assert model.entered.wait(timeout=10)
            # Four requests pile up behind the in-flight forward...
            futures = [batcher.submit(np.full(3, float(i)))
                       for i in range(1, 5)]
            model.release.set()
            plug.result(timeout=10)
            for i, future in zip(range(1, 5), futures):
                assert np.array_equal(future.result(timeout=10),
                                      np.full(3, float(i)))
        # ...and are served as ONE four-row forward, not four singles.
        assert model.call_sizes == [1, 4]


class TestBatchOvershoot:
    """Regression: a multi-row request must not push a batch past the max."""

    def test_multi_row_requests_never_overflow_the_batch(self):
        model = GatedModel()
        config = BatchingConfig(max_batch_size=8, max_latency_ms=50,
                                cache_size=0, pad_to_max_batch=False)
        rng = np.random.default_rng(12)
        blocks = [rng.normal(size=(3, 4)) for _ in range(3)]
        with MicroBatcher(model, config) as batcher:
            plug = batcher.submit(np.ones(4))
            assert model.entered.wait(timeout=10)
            futures = [batcher.submit(block) for block in blocks]
            model.release.set()
            plug.result(timeout=10)
            for block, future in zip(blocks, futures):
                assert np.array_equal(future.result(timeout=10), block)
        # The three 3-row requests were queued together: 3+3 fused, the
        # third carried into the next batch (3+3+3 would overshoot 8).
        assert model.call_sizes == [1, 6, 3]
        assert batcher.stats()["largest_batch"] <= 8

    def test_single_oversized_request_still_served(self):
        """One request larger than the quantum runs alone (chunked by
        ``run_at_quantum`` when padding is on) — never silently dropped."""
        calls = []

        def record(batch):
            calls.append(len(batch))
            return batch.copy()

        config = BatchingConfig(max_batch_size=4, max_latency_ms=5,
                                cache_size=0)
        block = np.random.default_rng(13).normal(size=(11, 3))
        with MicroBatcher(record, config) as batcher:
            result = batcher.predict(block, timeout=10)
        assert np.array_equal(result, block)
        assert set(calls) == {4}                  # chunked at the quantum


class TestCache:
    def test_repeat_requests_hit_the_cache(self):
        calls = []

        def record(batch):
            calls.append(len(batch))
            return batch * batch

        x = np.arange(4, dtype=np.float64)
        with MicroBatcher(record, BatchingConfig(cache_size=8)) as batcher:
            first = batcher.predict(x, timeout=10)
            second = batcher.predict(x, timeout=10)
            stats = batcher.stats()
        assert np.array_equal(first, second)
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 1
        assert len(calls) == 1  # the second request never reached the model

    def test_distinct_inputs_do_not_collide(self):
        with MicroBatcher(square_rows, BatchingConfig(cache_size=8)) as batcher:
            a = batcher.predict(np.full(3, 2.0), timeout=10)
            b = batcher.predict(np.full(3, 3.0), timeout=10)
            stats = batcher.stats()
        assert np.array_equal(a, np.full(3, 4.0))
        assert np.array_equal(b, np.full(3, 9.0))
        assert stats["cache_hits"] == 0

    def test_lru_eviction(self):
        with MicroBatcher(square_rows, BatchingConfig(cache_size=2)) as batcher:
            x0, x1, x2 = (np.full(2, float(v)) for v in (1, 2, 3))
            batcher.predict(x0, timeout=10)
            batcher.predict(x1, timeout=10)
            batcher.predict(x2, timeout=10)   # evicts x0
            batcher.predict(x0, timeout=10)   # miss again
            stats = batcher.stats()
        assert stats["cache_hits"] == 0
        assert stats["cache_misses"] == 4

    def test_mutating_a_result_never_corrupts_the_cache(self):
        x = np.arange(4, dtype=np.float64)
        with MicroBatcher(square_rows, BatchingConfig(cache_size=8)) as batcher:
            first = batcher.predict(x, timeout=10)
            first *= 0.0                          # caller post-processes in place
            second = batcher.predict(x, timeout=10)
            assert batcher.stats()["cache_hits"] == 1
            assert np.array_equal(second, x * x)  # served value untouched
            second += 1.0                         # hits are fresh copies too
            third = batcher.predict(x, timeout=10)
            assert np.array_equal(third, x * x)

    def test_cache_disabled(self):
        x = np.ones(3)
        with MicroBatcher(square_rows, BatchingConfig(cache_size=0)) as batcher:
            batcher.predict(x, timeout=10)
            batcher.predict(x, timeout=10)
            stats = batcher.stats()
        assert stats["cache_hits"] == 0 and stats["cache_misses"] == 0
        assert stats["batches"] == 2

    def test_digest_depends_on_salt_shape_dtype_and_bytes(self):
        x = np.arange(6, dtype=np.float64)
        assert input_digest(x) == input_digest(x.copy())
        assert input_digest(x) != input_digest(x.reshape(2, 3))
        assert input_digest(x) != input_digest(x.astype(np.float32))
        assert input_digest(x) != input_digest(x + 1)
        assert input_digest(x, "model-a") != input_digest(x, "model-b")
