"""Tests for the versioned model registry and hot swapping."""

import threading

import numpy as np
import pytest

from repro.serve import (BatchingConfig, ModelNotFound, ModelRegistry, Server,
                         export_end_model, load_servable, parse_reference)

from .conftest import CLASS_NAMES, make_end_model


def make_servable(tmp_path, seed, tag):
    path = str(tmp_path / f"artifact-{tag}")
    export_end_model(make_end_model(seed=seed), path, class_names=CLASS_NAMES)
    return load_servable(path)


class TestReferences:
    def test_parse_reference(self):
        assert parse_reference("fmd") == ("fmd", "latest")
        assert parse_reference("fmd@latest") == ("fmd", "latest")
        assert parse_reference("fmd@3") == ("fmd", "3")

    @pytest.mark.parametrize("bad", ["", "@2", None])
    def test_invalid_references(self, bad):
        with pytest.raises(ValueError):
            parse_reference(bad)


class TestRegistry:
    def test_register_auto_versions_and_latest(self, tmp_path):
        registry = ModelRegistry()
        s1 = make_servable(tmp_path, 0, "a")
        s2 = make_servable(tmp_path, 1, "b")
        assert registry.register("fmd", s1) == "1"
        assert registry.register("fmd", s2) == "2"
        assert registry.versions("fmd") == ["1", "2"]
        assert registry.latest_version("fmd") == "2"
        assert registry.resolve("fmd")[1] == "2"
        assert registry.resolve("fmd@1")[2] is s1
        assert len(registry) == 2

    def test_explicit_versions_and_reserved_name(self, tmp_path):
        registry = ModelRegistry()
        servable = make_servable(tmp_path, 0, "a")
        assert registry.register("fmd", servable, version="2024.1") == "2024.1"
        with pytest.raises(ValueError, match="reserved"):
            registry.register("fmd", servable, version="latest")
        with pytest.raises(ValueError, match="already has version"):
            registry.register("fmd", servable, version="2024.1")

    def test_register_without_promotion(self, tmp_path):
        registry = ModelRegistry()
        registry.register("fmd", make_servable(tmp_path, 0, "a"))
        registry.register("fmd", make_servable(tmp_path, 1, "b"),
                          make_latest=False)
        assert registry.latest_version("fmd") == "1"

    def test_set_latest_rollback(self, tmp_path):
        registry = ModelRegistry()
        registry.register("fmd", make_servable(tmp_path, 0, "a"))
        registry.register("fmd", make_servable(tmp_path, 1, "b"))
        registry.set_latest("fmd", "1")
        assert registry.resolve("fmd@latest")[1] == "1"
        with pytest.raises(ModelNotFound):
            registry.set_latest("fmd", "9")

    def test_unregister(self, tmp_path):
        registry = ModelRegistry()
        registry.register("fmd", make_servable(tmp_path, 0, "a"))
        registry.register("fmd", make_servable(tmp_path, 1, "b"))
        registry.unregister("fmd", "2")
        assert registry.latest_version("fmd") == "1"
        registry.unregister("fmd")
        with pytest.raises(ModelNotFound):
            registry.resolve("fmd")

    def test_unknown_lookups(self):
        registry = ModelRegistry()
        with pytest.raises(ModelNotFound):
            registry.resolve("ghost")
        with pytest.raises(ModelNotFound):
            registry.versions("ghost")
        assert "ghost" not in registry

    def test_load_from_artifact(self, tmp_path):
        registry = ModelRegistry()
        path = str(tmp_path / "artifact")
        export_end_model(make_end_model(), path, class_names=CLASS_NAMES)
        assert registry.load("fmd", path) == "1"
        assert "fmd@1" in registry

    def test_describe_lists_every_version(self, tmp_path):
        registry = ModelRegistry()
        registry.register("fmd", make_servable(tmp_path, 0, "a"))
        description = registry.describe()
        assert description["fmd"]["latest"] == "1"
        assert "1" in description["fmd"]["versions"]


class TestHotSwap:
    def test_hot_swap_under_concurrent_requests(self, tmp_path):
        """Requests during a version swap all succeed, each answered
        exactly by one of the two versions — never dropped, never mixed."""
        s1 = make_servable(tmp_path, 0, "a")
        s2 = make_servable(tmp_path, 10, "b")
        rng = np.random.default_rng(5)
        probe = rng.normal(size=(4, s1.input_dim))
        expected = {"1": s1.predict_proba(probe), "2": s2.predict_proba(probe)}
        assert not np.array_equal(expected["1"], expected["2"])

        server = Server(batching=BatchingConfig(max_batch_size=8,
                                                max_latency_ms=1,
                                                cache_size=0))
        server.register("fmd", s1)

        errors, mismatches = [], []
        stop = threading.Event()

        def client():
            while not stop.is_set():
                try:
                    response = server.predict(probe, model="fmd@latest",
                                              return_probabilities=True,
                                              timeout=10)
                except Exception as error:  # pragma: no cover - reporting
                    errors.append(error)
                    return
                got = np.asarray(response["probabilities"])
                want = expected[response["version"]]
                if not np.array_equal(got, want):
                    mismatches.append(response["version"])

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        # Swap back and forth while the clients hammer the endpoint.
        server.register("fmd", s2)   # version "2", promoted to latest
        for _ in range(20):
            server.registry.set_latest("fmd", "1")
            server.registry.set_latest("fmd", "2")
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        server.close()
        assert not errors
        assert not mismatches

    def test_reregistered_version_serves_the_new_weights(self, tmp_path):
        """unregister + register under the same version string must retire
        the old batcher — never serve the old weights or cache."""
        s1 = make_servable(tmp_path, 0, "a")
        s2 = make_servable(tmp_path, 10, "b")
        probe = np.random.default_rng(1).normal(size=(3, s1.input_dim))
        with Server(batching=BatchingConfig(max_latency_ms=1)) as server:
            server.register("fmd", s1, version="1")
            first = server.predict(probe, model="fmd@1",
                                   return_probabilities=True)
            server.registry.unregister("fmd", "1")
            server.register("fmd", s2, version="1")   # re-published weights
            second = server.predict(probe, model="fmd@1",
                                    return_probabilities=True)
        assert np.array_equal(np.asarray(first["probabilities"]),
                              s1.predict_proba(probe, batch_size=32))
        assert np.array_equal(np.asarray(second["probabilities"]),
                              s2.predict_proba(probe, batch_size=32))

    def test_in_flight_future_survives_unregister(self, tmp_path):
        servable = make_servable(tmp_path, 0, "a")
        server = Server(batching=BatchingConfig(max_latency_ms=20,
                                                cache_size=0))
        server.register("fmd", servable)
        probe = np.random.default_rng(0).normal(size=(2, servable.input_dim))
        future = server.submit(probe, model="fmd")
        server.registry.unregister("fmd")
        assert np.array_equal(future.result(timeout=10),
                              servable.predict_proba(probe))
        server.close()
