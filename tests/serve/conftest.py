"""Fixtures for the serving tests.

Two kinds of servables are used: hand-built :class:`EndModel`s (fast,
deterministic — most batching/registry tests) and one genuinely trained
pipeline artifact (the offline-vs-served bit-identity tests, which must
exercise the real train → export → serve path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backbones.backbone import BackboneSpec, ClassificationModel, Encoder
from repro.core import Controller, ControllerConfig, Task
from repro.distill import EndModel, EndModelConfig
from repro.modules import MultiTaskConfig, MultiTaskModule
from repro.serve import export_end_model, load_servable

SPEC = BackboneSpec(name="resnet50", input_dim=24, hidden_dims=(48, 32),
                    feature_dim=32)
NUM_CLASSES = 7
CLASS_NAMES = [f"class_{i}" for i in range(NUM_CLASSES)]


def make_end_model(seed: int = 0, num_classes: int = NUM_CLASSES) -> EndModel:
    """A structurally faithful end model with reproducible random weights."""
    encoder = Encoder(SPEC, rng=np.random.default_rng(seed))
    model = ClassificationModel(encoder, num_classes,
                                rng=np.random.default_rng(seed + 1))
    return EndModel(model)


@pytest.fixture()
def end_model() -> EndModel:
    return make_end_model()


@pytest.fixture()
def artifact_dir(tmp_path, end_model) -> str:
    path = str(tmp_path / "artifact")
    export_end_model(end_model, path, class_names=CLASS_NAMES,
                     metrics={"test_accuracy": 0.91})
    return path


@pytest.fixture()
def servable(artifact_dir):
    return load_servable(artifact_dir)


@pytest.fixture()
def features() -> np.ndarray:
    return np.random.default_rng(7).normal(size=(64, SPEC.input_dim))


@pytest.fixture(scope="module")
def trained_export(tmp_path_factory, tiny_workspace, tiny_backbone):
    """One real pipeline run exported through the Controller hook.

    Returns ``(result, split, path)`` — the offline result, its task split,
    and the exported artifact directory.
    """
    split = tiny_workspace.make_task_split("fmd", shots=5, split_seed=0)
    task = Task.from_split(split, scads=tiny_workspace.scads,
                           backbone=tiny_backbone,
                           wanted_num_related_class=3,
                           images_per_related_class=8)
    path = str(tmp_path_factory.mktemp("served") / "fmd-endmodel")
    config = ControllerConfig(end_model=EndModelConfig(epochs=8),
                              export_path=path, seed=0)
    controller = Controller(modules=[MultiTaskModule(MultiTaskConfig(epochs=4))],
                            config=config)
    result = controller.run(task)
    return result, split, path
