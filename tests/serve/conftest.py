"""Fixtures for the serving tests.

Two kinds of servables are used: hand-built :class:`EndModel`s (fast,
deterministic — most batching/registry tests) and one genuinely trained
pipeline artifact (the offline-vs-served bit-identity tests, which must
exercise the real train → export → serve path).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.backbones.backbone import BackboneSpec, ClassificationModel, Encoder
from repro.core import Controller, ControllerConfig, Task
from repro.distill import EndModel, EndModelConfig
from repro.ensemble import TagletEnsemble
from repro.modules import MultiTaskConfig, MultiTaskModule
from repro.modules.base import ModelTaglet
from repro.modules.zsl_kg import ZslKgTaglet
from repro.serve import export_end_model, export_ensemble, load_servable

SPEC = BackboneSpec(name="resnet50", input_dim=24, hidden_dims=(48, 32),
                    feature_dim=32)
NUM_CLASSES = 7
CLASS_NAMES = [f"class_{i}" for i in range(NUM_CLASSES)]


class GatedModel:
    """A recording stand-in model whose first call blocks on an event.

    Lets a test park the batcher worker inside a forward while it stages
    the queue, making batch-composition scenarios deterministic.
    """

    def __init__(self):
        self.calls = []
        self.release = threading.Event()
        self.entered = threading.Event()
        self._first = True

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        self.calls.append(np.array(batch, copy=True))
        if self._first:
            self._first = False
            self.entered.set()
            assert self.release.wait(timeout=10)
        return batch.copy()

    @property
    def call_sizes(self):
        return [len(call) for call in self.calls]


def make_end_model(seed: int = 0, num_classes: int = NUM_CLASSES) -> EndModel:
    """A structurally faithful end model with reproducible random weights."""
    encoder = Encoder(SPEC, rng=np.random.default_rng(seed))
    model = ClassificationModel(encoder, num_classes,
                                rng=np.random.default_rng(seed + 1))
    return EndModel(model)


def make_model(seed: int, num_classes: int = NUM_CLASSES) -> ClassificationModel:
    encoder = Encoder(SPEC, rng=np.random.default_rng(seed))
    return ClassificationModel(encoder, num_classes,
                               rng=np.random.default_rng(seed + 1))


def make_ensemble(num_members: int = 3, with_zsl: bool = True,
                  seed: int = 100) -> TagletEnsemble:
    """A structurally faithful taglet ensemble (ModelTaglets + one ZSL-KG)."""
    taglets = []
    plain = num_members - (1 if with_zsl else 0)
    for i in range(plain):
        taglets.append(ModelTaglet(f"member_{i}",
                                   make_model(seed + 10 * i)))
    if with_zsl:
        taglets.append(ZslKgTaglet("zsl_kg", make_model(seed + 10 * plain),
                                   logit_scale=3.0))
    return TagletEnsemble(taglets)


@pytest.fixture()
def end_model() -> EndModel:
    return make_end_model()


@pytest.fixture()
def artifact_dir(tmp_path, end_model) -> str:
    path = str(tmp_path / "artifact")
    export_end_model(end_model, path, class_names=CLASS_NAMES,
                     metrics={"test_accuracy": 0.91})
    return path


@pytest.fixture()
def servable(artifact_dir):
    return load_servable(artifact_dir)


@pytest.fixture()
def features() -> np.ndarray:
    return np.random.default_rng(7).normal(size=(64, SPEC.input_dim))


@pytest.fixture()
def ensemble() -> TagletEnsemble:
    return make_ensemble()


@pytest.fixture()
def ensemble_dir(tmp_path, ensemble) -> str:
    path = str(tmp_path / "ensemble-artifact")
    export_ensemble(ensemble, path, class_names=CLASS_NAMES,
                    metrics={"test_accuracy": 0.87})
    return path


@pytest.fixture()
def servable_ensemble(ensemble_dir):
    return load_servable(ensemble_dir)


@pytest.fixture(scope="module")
def trained_export(tmp_path_factory, tiny_workspace, tiny_backbone):
    """One real pipeline run exported through the Controller hooks.

    Returns ``(result, split, path)`` — the offline result, its task split,
    and the exported end-model artifact directory.  The taglet ensemble is
    exported next to it, at ``path + "-ensemble"``.
    """
    split = tiny_workspace.make_task_split("fmd", shots=5, split_seed=0)
    task = Task.from_split(split, scads=tiny_workspace.scads,
                           backbone=tiny_backbone,
                           wanted_num_related_class=3,
                           images_per_related_class=8)
    path = str(tmp_path_factory.mktemp("served") / "fmd-endmodel")
    config = ControllerConfig(end_model=EndModelConfig(epochs=8),
                              export_path=path,
                              export_ensemble_path=path + "-ensemble",
                              seed=0)
    controller = Controller(modules=[MultiTaskModule(MultiTaskConfig(epochs=4))],
                            config=config)
    result = controller.run(task)
    return result, split, path
