"""Tests for the Server front end and the JSON/HTTP endpoint."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import BatchingConfig, Server, start_http_server


@pytest.fixture()
def server(artifact_dir):
    # A generous latency window so concurrent test clients reliably fuse
    # into shared batches even on a slow single-CPU runner.
    app = Server(batching=BatchingConfig(max_batch_size=16, max_latency_ms=20))
    app.load("default", artifact_dir)
    yield app
    app.close()


class TestServerApi:
    def test_predict_response_shape(self, server, servable, features):
        response = server.predict(features[:3], return_probabilities=True)
        assert response["model"] == "default"
        assert response["version"] == "1"
        assert response["predictions"] == servable.predict(features[:3]).tolist()
        assert response["labels"] == servable.predict_names(features[:3])
        assert np.array_equal(np.asarray(response["probabilities"]),
                              servable.predict_proba(features[:3]))

    def test_single_example_request(self, server, servable, features):
        response = server.predict(features[0])
        assert len(response["predictions"]) == 1
        assert response["predictions"][0] == int(servable.predict(features[:1])[0])

    def test_submit_returns_probability_future(self, server, servable, features):
        future = server.submit(features[:5])
        assert np.array_equal(future.result(timeout=10),
                              servable.predict_proba(features[:5]))

    def test_served_bit_identical_to_offline(self, server, end_model,
                                             servable, features):
        """The acceptance criterion: serving never changes a prediction.

        Served rows are bit-identical to offline inference at the serving
        batch quantum (every forward runs at exactly ``max_batch_size``
        rows), and match the end model's full-batch offline probabilities
        to BLAS round-off.
        """
        quantized = servable.predict_proba(features, batch_size=16)
        futures = [server.submit(row) for row in features]
        served = np.stack([f.result(timeout=10) for f in futures])
        assert np.array_equal(served, quantized)
        offline = end_model.predict_proba(features, batch_size=None)
        assert np.allclose(served, offline, rtol=1e-12, atol=1e-14)
        assert np.array_equal(served.argmax(axis=1), offline.argmax(axis=1))

    def test_unknown_model(self, server, features):
        from repro.serve import ModelNotFound
        with pytest.raises(ModelNotFound):
            server.predict(features[:1], model="ghost")

    def test_stats_and_describe(self, server, features):
        server.predict(features[:2])
        stats = server.stats()
        assert stats["default@1"]["requests"] >= 1
        assert stats["default@1"]["num_workers"] == 1
        description = server.describe()
        assert json.dumps(description)
        assert description["batching"]["max_batch_size"] == 16
        assert description["batching"]["num_workers"] == 1

    def test_stats_survive_a_hot_swap(self, server, artifact_dir, tmp_path,
                                      features):
        """Regression: re-registering a version with different weights used
        to silently drop the retired batcher's counters."""
        from .conftest import CLASS_NAMES, make_end_model
        from repro.serve import export_end_model, load_servable

        server.predict(features[:2])
        server.predict(features[:1])
        before = server.stats()["default@1"]
        assert before["requests"] == 2

        # Re-publish version 1 with different weights (unregister+register).
        other = str(tmp_path / "republished")
        export_end_model(make_end_model(seed=9), other,
                         class_names=CLASS_NAMES)
        server.registry.unregister("default", "1")
        server.register("default", load_servable(other), version="1")
        server.predict(features[:3])

        after = server.stats()["default@1"]
        assert after["requests"] == 3            # 2 retired + 1 live
        assert after["examples"] == before["examples"] + 3

    def test_wrong_feature_width_fails_alone(self, server, servable,
                                             features):
        """Regression: a malformed request used to poison every batch-mate
        fused with it; now it fails alone at submit."""
        import threading

        offline = servable.predict_proba(features, batch_size=16)
        results = [None] * len(features)
        errors = []

        def client(i):
            try:
                results[i] = server.submit(features[i]).result(timeout=30)
            except Exception as error:  # pragma: no cover - reporting
                errors.append(error)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(len(features))]
        for thread in threads:
            thread.start()
        # A malformed request lands while valid traffic is in flight...
        with pytest.raises(ValueError, match="features per row"):
            server.predict(np.ones(99))
        for thread in threads:
            thread.join(timeout=60)
        # ...and every valid request still resolved, bit-identically.
        assert not errors
        assert np.array_equal(np.stack(results), offline)
        assert server.stats()["default@1"]["rejected"] == 1

    def test_priority_and_deadline_are_plumbed(self, server, features):
        from repro.serve import DeadlineExceeded

        response = server.predict(features[:1], priority=5,
                                  deadline_ms=60_000)
        assert len(response["predictions"]) == 1
        with pytest.raises(DeadlineExceeded):
            server.predict(features[:1], deadline_ms=-1)

    def test_closed_server_rejects_requests(self, artifact_dir, features):
        from repro.serve import ShuttingDown

        app = Server()
        app.load("default", artifact_dir)
        app.close()
        with pytest.raises(ShuttingDown, match="closed"):
            app.predict(features[:1])
        assert app.health()["status"] == "closed"


class TestHealthAndDrain:
    def test_health_reports_queue_workers_and_manifest(self, server,
                                                       features):
        server.predict(features[:1])    # instantiate the batcher
        health = server.health()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0
        assert health["workers"] == {"alive": 1, "expected": 1}
        assert health["models"] == ["default@1"]

    def test_draining_flag_is_advisory(self, server, features):
        server.set_draining(True)
        health = server.health()
        assert health["status"] == "draining"
        assert health["draining"] is True
        # Advisory only: in-flight and even new requests still answer —
        # it is the *router* that stops sending new traffic here.
        assert server.predict(features[:2])["version"] == "1"
        server.set_draining(False)
        assert server.health()["status"] == "ok"


class TestHotSwapRacingRequests:
    def test_swap_racing_requests_old_or_new_never_mixed(self, tmp_path,
                                                         features):
        """The hot-swap contract at the request level: while ``m@latest``
        is repointed under continuous traffic, every response is the old
        OR the new version's bit-exact output — never an error, never a
        row from a batch that mixed weights."""
        import time

        from repro.serve import export_end_model, load_servable

        from .conftest import CLASS_NAMES, make_end_model

        quantum = 8
        old_path = str(tmp_path / "v1")
        new_path = str(tmp_path / "v2")
        export_end_model(make_end_model(seed=0), old_path,
                         class_names=CLASS_NAMES)
        export_end_model(make_end_model(seed=5), new_path,
                         class_names=CLASS_NAMES)
        old = load_servable(old_path).predict_proba(features,
                                                    batch_size=quantum)
        new = load_servable(new_path).predict_proba(features,
                                                    batch_size=quantum)
        assert not np.array_equal(old, new)

        app = Server(batching=BatchingConfig(max_batch_size=quantum,
                                             max_latency_ms=1, cache_size=0))
        app.load("m", old_path)
        errors, bad_rows = [], []
        versions_seen = set()
        stop = threading.Event()

        def client():
            i = 0
            while not stop.is_set():
                i = (i + 1) % len(features)
                try:
                    response = app.predict(features[i], model="m",
                                           return_probabilities=True)
                except Exception as error:  # pragma: no cover - reporting
                    errors.append(error)
                    continue
                row = np.asarray(response["probabilities"][0])
                versions_seen.add(response["version"])
                expected = old if response["version"] == "1" else new
                if not np.array_equal(row, expected[i]):
                    bad_rows.append(i)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            time.sleep(0.05)
            assert app.load("m", new_path) == "2"   # the racing swap
            time.sleep(0.05)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        try:
            assert not errors, errors[:3]
            assert not bad_rows
            # After the swap, 'm' resolves to the new weights...
            final = app.predict(features[0], model="m",
                                return_probabilities=True)
            assert final["version"] == "2"
            assert np.array_equal(np.asarray(final["probabilities"][0]),
                                  new[0])
            # ...and the old version stays addressable explicitly.
            pinned = app.predict(features[0], model="m@1",
                                 return_probabilities=True)
            assert np.array_equal(np.asarray(pinned["probabilities"][0]),
                                  old[0])
        finally:
            app.close()


class TestHttpEndpoint:
    @pytest.fixture()
    def endpoint(self, server):
        httpd, thread = start_http_server(server, port=0)
        port = httpd.server_address[1]
        yield f"http://127.0.0.1:{port}"
        httpd.shutdown()

    def _post(self, url, payload, timeout=10):
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            f"{url}/predict", data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read())

    def test_health_models_stats(self, endpoint, features):
        with urllib.request.urlopen(f"{endpoint}/healthz", timeout=10) as r:
            health = json.loads(r.read())
        assert health["status"] == "ok"
        assert health["draining"] is False
        assert health["models"] == ["default@1"]
        assert health["queue_depth"] == 0
        with urllib.request.urlopen(f"{endpoint}/models", timeout=10) as r:
            models = json.loads(r.read())
        assert models["default"]["latest"] == "1"
        # Regression: /stats returns the documented per-model batcher
        # counters (it used to leak the whole describe() payload).
        self._post(endpoint, {"inputs": features[:2].tolist()})
        with urllib.request.urlopen(f"{endpoint}/stats", timeout=10) as r:
            stats = json.loads(r.read())
        assert stats["default@1"]["requests"] >= 1
        assert "batching" not in stats
        # The full payload moved to /describe.
        with urllib.request.urlopen(f"{endpoint}/describe", timeout=10) as r:
            description = json.loads(r.read())
        assert "batching" in description and "stats" in description

    def test_predict_round_trip(self, endpoint, servable, features):
        response = self._post(endpoint, {"inputs": features[:4].tolist(),
                                         "return_probabilities": True})
        assert response["predictions"] == servable.predict(features[:4]).tolist()
        assert np.allclose(response["probabilities"],
                           servable.predict_proba(features[:4]))

    def test_concurrent_http_clients_fuse_into_batches(self, endpoint, server,
                                                       servable, features):
        offline = servable.predict_proba(features, batch_size=16)
        results = [None] * len(features)
        errors = []

        def client(i):
            try:
                results[i] = self._post(
                    endpoint, {"inputs": [features[i].tolist()],
                               "return_probabilities": True})
            except Exception as error:  # pragma: no cover - reporting
                errors.append(error)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(len(features))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        served = np.concatenate([np.asarray(r["probabilities"])
                                 for r in results])
        assert np.array_equal(served, offline)
        stats = server.stats()["default@1"]
        assert stats["batches"] < stats["requests"]  # genuinely micro-batched

    @pytest.mark.parametrize("payload,fragment", [
        ({}, "missing 'inputs'"),
        ({"inputs": "not numbers"}, "numeric"),
        ({"inputs": []}, "non-empty"),
        ({"inputs": [1.0, 2.0]}, "features per row"),
        ({"inputs": [[1.0] * 24], "priority": "urgent"}, "priority"),
        ({"inputs": [[1.0] * 24], "deadline_ms": "soon"}, "deadline_ms"),
    ])
    def test_bad_requests_are_400(self, endpoint, payload, fragment):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(endpoint, payload)
        assert excinfo.value.code == 400
        assert fragment in json.loads(excinfo.value.read())["error"]

    def test_expired_deadline_is_504(self, endpoint, features):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(endpoint, {"inputs": features[:1].tolist(),
                                  "deadline_ms": -1})
        assert excinfo.value.code == 504
        assert "deadline" in json.loads(excinfo.value.read())["error"]

    def test_priority_and_deadline_accepted(self, endpoint, servable,
                                            features):
        response = self._post(endpoint, {"inputs": features[:2].tolist(),
                                         "priority": 7,
                                         "deadline_ms": 60000})
        assert response["predictions"] == servable.predict(
            features[:2]).tolist()
        # null means "unset" for both optional fields, symmetrically.
        response = self._post(endpoint, {"inputs": features[:2].tolist(),
                                         "priority": None,
                                         "deadline_ms": None})
        assert response["predictions"] == servable.predict(
            features[:2]).tolist()

    def test_unknown_model_is_404(self, endpoint, features):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(endpoint, {"model": "ghost",
                                  "inputs": features[:1].tolist()})
        assert excinfo.value.code == 404

    def test_unknown_path_is_404(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{endpoint}/nope", timeout=10)
        assert excinfo.value.code == 404
