"""Tests for the ZSL-KG module."""

import numpy as np
import pytest

from repro.modules import GraphClassEncoder, ZslKgConfig, ZslKgModule
from repro.nn import Tensor


FAST_CONFIG = ZslKgConfig()


class TestGraphClassEncoder:
    def test_output_shape(self):
        encoder = GraphClassEncoder(embedding_dim=16, hidden_dim=8, output_dim=6,
                                    rng=np.random.default_rng(0))
        out = encoder(Tensor(np.random.default_rng(1).normal(size=(4, 32))))
        assert out.shape == (4, 6)


class TestZslKgModule:
    def test_zero_shot_above_chance(self, module_input, fmd_test_data):
        ZslKgModule._pretrained_cache.clear()
        taglet = ZslKgModule(FAST_CONFIG).train(module_input)
        accuracy = taglet.accuracy(*fmd_test_data)
        assert accuracy > 1.5 / module_input.num_classes

    def test_does_not_use_labeled_data(self, module_input, fmd_test_data):
        """Shuffling the labels must not change the taglet: it is zero-shot."""
        import copy

        ZslKgModule._pretrained_cache.clear()
        module = ZslKgModule(FAST_CONFIG)
        taglet_a = module.train(module_input)

        shuffled = copy.copy(module_input)
        shuffled.labeled_labels = np.roll(module_input.labeled_labels, 1)
        taglet_b = module.train(shuffled)
        np.testing.assert_allclose(taglet_a.predict_proba(fmd_test_data[0][:5]),
                                   taglet_b.predict_proba(fmd_test_data[0][:5]))

    def test_probabilities_valid(self, module_input, fmd_test_data):
        taglet = ZslKgModule(FAST_CONFIG).train(module_input)
        probs = taglet.predict_proba(fmd_test_data[0][:7])
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(7))

    def test_pretraining_is_cached(self, module_input):
        ZslKgModule._pretrained_cache.clear()
        module = ZslKgModule(FAST_CONFIG)
        module.train(module_input)
        assert len(ZslKgModule._pretrained_cache) == 1
        module.train(module_input)
        assert len(ZslKgModule._pretrained_cache) == 1

    def test_requires_scads(self, module_input):
        import copy

        broken = copy.copy(module_input)
        broken.scads = None
        with pytest.raises(ValueError):
            ZslKgModule(FAST_CONFIG).train(broken)

    def test_handles_oov_target_classes(self, tiny_workspace, tiny_backbone):
        """Grocery Store includes oatghurt/soygurt, which are added nodes."""
        from repro.modules.base import ModuleInput
        from repro.scads.query import AuxiliarySelection

        split = tiny_workspace.make_task_split("grocery_store", shots=1, split_seed=0)
        empty = AuxiliarySelection(
            features=np.zeros((0, tiny_workspace.world.image_dim)),
            labels=np.zeros(0, dtype=np.int64), concepts=[])
        data = ModuleInput(classes=split.classes,
                           labeled_features=split.labeled_features,
                           labeled_labels=split.labeled_labels,
                           unlabeled_features=split.unlabeled_features[:20],
                           auxiliary=empty, backbone=tiny_backbone,
                           scads=tiny_workspace.scads, seed=0)
        taglet = ZslKgModule(FAST_CONFIG).train(data)
        probs = taglet.predict_proba(split.test_features[:5])
        assert probs.shape == (5, split.num_classes)
        assert np.isfinite(probs).all()
