"""Tests for the module/taglet base abstractions."""

import numpy as np
import pytest

from repro.backbones.backbone import ClassificationModel
from repro.datasets import ClassSpec
from repro.modules.base import ModelTaglet, ModuleInput, Taglet
from repro.scads.query import AuxiliarySelection


def make_input(num_labeled=4, num_classes=2, dim=8, backbone=None):
    rng = np.random.default_rng(0)
    empty = AuxiliarySelection(features=np.zeros((0, dim)),
                               labels=np.zeros(0, dtype=np.int64), concepts=[])
    return ModuleInput(
        classes=[ClassSpec(f"c{i}", f"c{i}") for i in range(num_classes)],
        labeled_features=rng.normal(size=(num_labeled, dim)),
        labeled_labels=rng.integers(0, num_classes, size=num_labeled),
        unlabeled_features=rng.normal(size=(6, dim)),
        auxiliary=empty, backbone=backbone, seed=0)


class TestModuleInput:
    def test_properties(self):
        data = make_input()
        assert data.num_classes == 2
        assert data.class_names == ["c0", "c1"]
        data.validate()

    def test_validation_errors(self):
        data = make_input()
        data.labeled_labels = np.array([5] * len(data.labeled_features))
        with pytest.raises(ValueError):
            data.validate()

        empty = make_input(num_labeled=0)
        empty.labeled_labels = np.zeros(0, dtype=np.int64)
        with pytest.raises(ValueError):
            empty.validate()


class TestTaglet:
    def test_model_taglet_predicts_probabilities(self, tiny_backbone):
        model = ClassificationModel.from_backbone(tiny_backbone, num_classes=3,
                                                  rng=np.random.default_rng(0))
        taglet = ModelTaglet("test", model)
        features = np.random.default_rng(1).normal(size=(7, tiny_backbone.input_dim))
        probs = taglet.predict_proba(features)
        assert probs.shape == (7, 3)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(7))
        assert taglet.predict(features).shape == (7,)

    def test_accuracy_on_empty(self, tiny_backbone):
        model = ClassificationModel.from_backbone(tiny_backbone, num_classes=3)
        taglet = ModelTaglet("test", model)
        assert taglet.accuracy(np.zeros((0, tiny_backbone.input_dim)),
                               np.zeros(0)) == 0.0

    def test_base_taglet_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Taglet("abstract").predict_proba(np.zeros((1, 2)))
