"""Tests for the Transfer module."""

import numpy as np
import pytest

from repro.modules import TransferConfig, TransferModule


FAST_CONFIG = TransferConfig()


class TestTransferModule:
    def test_produces_taglet_above_chance(self, module_input, fmd_test_data):
        taglet = TransferModule(FAST_CONFIG).train(module_input)
        test_features, test_labels = fmd_test_data
        accuracy = taglet.accuracy(test_features, test_labels)
        assert accuracy > 2.0 / module_input.num_classes

    def test_probabilities_are_valid(self, module_input, fmd_test_data):
        taglet = TransferModule(FAST_CONFIG).train(module_input)
        probs = taglet.predict_proba(fmd_test_data[0][:10])
        assert probs.shape == (10, module_input.num_classes)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(10))

    def test_falls_back_to_finetuning_without_auxiliary(self, module_input_no_aux,
                                                        fmd_test_data):
        taglet = TransferModule(FAST_CONFIG).train(module_input_no_aux)
        accuracy = taglet.accuracy(*fmd_test_data)
        assert accuracy > 1.0 / module_input_no_aux.num_classes

    def test_auxiliary_data_does_not_hurt_in_one_shot(self, one_shot_inputs,
                                                      fmd_test_data):
        """Auxiliary fine-tuning must at least not degrade the classifier when
        labels are scarcest.  (On the reduced test workspace the backbone has
        already seen most of the auxiliary haystack, so the *gain* is small —
        the full-size benefit is measured by the benchmark harness and the
        integration test; here we guard against regressions that make the
        auxiliary phase destructive.)"""
        with_aux_input, without_aux_input = one_shot_inputs
        with_aux = TransferModule(FAST_CONFIG).train(with_aux_input)
        without_aux = TransferModule(FAST_CONFIG).train(without_aux_input)
        assert (with_aux.accuracy(*fmd_test_data)
                >= without_aux.accuracy(*fmd_test_data) - 0.06)

    def test_module_name(self, module_input):
        taglet = TransferModule(FAST_CONFIG).train(module_input)
        assert taglet.name == "transfer"

    def test_requires_labeled_data(self, module_input):
        import copy

        broken = copy.copy(module_input)
        broken.labeled_features = np.zeros((0, module_input.labeled_features.shape[1]))
        broken.labeled_labels = np.zeros(0, dtype=np.int64)
        with pytest.raises(ValueError):
            TransferModule(FAST_CONFIG).train(broken)
