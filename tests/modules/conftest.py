"""Fixtures shared by the module tests."""

import numpy as np
import pytest

from repro.modules.base import ModuleInput
from repro.scads.query import AuxiliarySelection


@pytest.fixture(scope="module")
def module_input(tiny_workspace, tiny_backbone):
    """A 5-shot FMD task on the tiny workspace, with auxiliary data selected."""
    split = tiny_workspace.make_task_split("fmd", shots=5, split_seed=0)
    auxiliary = tiny_workspace.scads.select(split.classes, num_related_concepts=5,
                                            images_per_concept=20,
                                            rng=np.random.default_rng(0))
    return ModuleInput(classes=split.classes,
                       labeled_features=split.labeled_features,
                       labeled_labels=split.labeled_labels,
                       unlabeled_features=split.unlabeled_features[:120],
                       auxiliary=auxiliary,
                       backbone=tiny_backbone,
                       scads=tiny_workspace.scads,
                       seed=0)


@pytest.fixture(scope="module")
def module_input_no_aux(module_input):
    """The same task with no auxiliary data available."""
    empty = AuxiliarySelection(
        features=np.zeros((0, module_input.labeled_features.shape[1])),
        labels=np.zeros(0, dtype=np.int64), concepts=[])
    return ModuleInput(classes=module_input.classes,
                       labeled_features=module_input.labeled_features,
                       labeled_labels=module_input.labeled_labels,
                       unlabeled_features=module_input.unlabeled_features,
                       auxiliary=empty,
                       backbone=module_input.backbone,
                       scads=module_input.scads,
                       seed=0)


@pytest.fixture(scope="module")
def fmd_test_data(tiny_workspace):
    split = tiny_workspace.make_task_split("fmd", shots=5, split_seed=0)
    return split.test_features, split.test_labels


@pytest.fixture(scope="module")
def one_shot_inputs(tiny_workspace, tiny_backbone):
    """1-shot FMD inputs with and without auxiliary data (for few-shot claims)."""
    split = tiny_workspace.make_task_split("fmd", shots=1, split_seed=0)
    auxiliary = tiny_workspace.scads.select(split.classes, num_related_concepts=5,
                                            images_per_concept=20,
                                            rng=np.random.default_rng(0))
    empty = AuxiliarySelection(
        features=np.zeros((0, split.labeled_features.shape[1])),
        labels=np.zeros(0, dtype=np.int64), concepts=[])

    def build(selection):
        return ModuleInput(classes=split.classes,
                           labeled_features=split.labeled_features,
                           labeled_labels=split.labeled_labels,
                           unlabeled_features=split.unlabeled_features[:120],
                           auxiliary=selection,
                           backbone=tiny_backbone,
                           scads=tiny_workspace.scads,
                           seed=0)

    return build(auxiliary), build(empty)
