"""Tests for the Multi-task module."""

import numpy as np
import pytest

from repro.modules import MultiTaskConfig, MultiTaskModule


FAST_CONFIG = MultiTaskConfig()


class TestMultiTaskModule:
    def test_produces_taglet_above_chance(self, module_input, fmd_test_data):
        taglet = MultiTaskModule(FAST_CONFIG).train(module_input)
        accuracy = taglet.accuracy(*fmd_test_data)
        assert accuracy > 2.0 / module_input.num_classes

    def test_probabilities_shape(self, module_input, fmd_test_data):
        taglet = MultiTaskModule(FAST_CONFIG).train(module_input)
        probs = taglet.predict_proba(fmd_test_data[0][:6])
        assert probs.shape == (6, module_input.num_classes)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(6))

    def test_without_auxiliary_degenerates_to_finetuning(self, module_input_no_aux,
                                                         fmd_test_data):
        taglet = MultiTaskModule(FAST_CONFIG).train(module_input_no_aux)
        assert taglet.accuracy(*fmd_test_data) > 1.0 / module_input_no_aux.num_classes

    def test_aux_loss_weight_zero_still_trains(self, module_input, fmd_test_data):
        config = MultiTaskConfig(epochs=8, aux_loss_weight=0.0)
        taglet = MultiTaskModule(config).train(module_input)
        assert taglet.accuracy(*fmd_test_data) > 1.0 / module_input.num_classes

    def test_module_name(self, module_input):
        assert MultiTaskModule(FAST_CONFIG).train(module_input).name == "multitask"

    def test_deterministic_given_seed(self, module_input, fmd_test_data):
        a = MultiTaskModule(FAST_CONFIG).train(module_input)
        b = MultiTaskModule(FAST_CONFIG).train(module_input)
        np.testing.assert_allclose(a.predict_proba(fmd_test_data[0][:5]),
                                   b.predict_proba(fmd_test_data[0][:5]))
