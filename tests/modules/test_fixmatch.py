"""Tests for the FixMatch module."""

import numpy as np
import pytest

from repro.modules import FixMatchConfig, FixMatchModule


FAST_CONFIG = FixMatchConfig()


class TestFixMatchModule:
    def test_produces_taglet_above_chance(self, module_input, fmd_test_data):
        taglet = FixMatchModule(FAST_CONFIG).train(module_input)
        assert taglet.accuracy(*fmd_test_data) > 2.0 / module_input.num_classes

    def test_probabilities_valid(self, module_input, fmd_test_data):
        taglet = FixMatchModule(FAST_CONFIG).train(module_input)
        probs = taglet.predict_proba(fmd_test_data[0][:8])
        assert probs.shape == (8, module_input.num_classes)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(8))

    def test_works_without_unlabeled_data(self, module_input, fmd_test_data):
        import copy

        no_unlabeled = copy.copy(module_input)
        no_unlabeled.unlabeled_features = np.zeros(
            (0, module_input.labeled_features.shape[1]))
        taglet = FixMatchModule(FAST_CONFIG).train(no_unlabeled)
        assert taglet.accuracy(*fmd_test_data) > 1.0 / module_input.num_classes

    def test_works_without_auxiliary_data(self, module_input_no_aux, fmd_test_data):
        taglet = FixMatchModule(FAST_CONFIG).train(module_input_no_aux)
        assert taglet.accuracy(*fmd_test_data) > 1.0 / module_input_no_aux.num_classes

    def test_confidence_threshold_one_disables_pseudo_labels(self, module_input,
                                                             fmd_test_data):
        config = FixMatchConfig(aux_epochs=1, head_warmup_epochs=5, epochs=2,
                                confidence_threshold=1.1)
        taglet = FixMatchModule(config).train(module_input)
        # Training must still work, relying only on the supervised term.
        assert taglet.predict_proba(fmd_test_data[0][:3]).shape[1] == \
            module_input.num_classes

    def test_module_name(self, module_input):
        assert FixMatchModule(FAST_CONFIG).train(module_input).name == "fixmatch"
