"""End-to-end integration tests reproducing the paper's headline behaviours
at miniature scale.

These are the most important tests in the suite: they check the *shape* of
the paper's findings (auxiliary + unlabeled data helps most in the few-shot
regime; pruning degrades auxiliary usefulness; the ensemble improves over
individual modules) rather than any particular number.
"""

import numpy as np
import pytest

from repro.baselines import BaselineInput, FineTuningBaseline, FineTuningConfig
from repro.core import Controller, ControllerConfig, Task


def run_taglets(workspace, backbone, split, prune_level=None):
    task = Task.from_split(split, scads=workspace.scads, backbone=backbone)
    config = ControllerConfig(prune_level=prune_level, seed=0)
    controller = Controller(config=config)
    return controller.run(task)


def run_finetune(backbone, split):
    baseline = FineTuningBaseline(FineTuningConfig())
    data = BaselineInput(labeled_features=split.labeled_features,
                         labeled_labels=split.labeled_labels,
                         unlabeled_features=split.unlabeled_features,
                         num_classes=split.num_classes, backbone=backbone, seed=0)
    return baseline.train(data)


@pytest.fixture(scope="module")
def few_shot_results(tiny_workspace, tiny_backbone):
    split = tiny_workspace.make_task_split("fmd", shots=5, split_seed=0)
    taglets_result = run_taglets(tiny_workspace, tiny_backbone, split)
    finetune_taglet = run_finetune(tiny_backbone, split)
    return split, taglets_result, finetune_taglet


class TestHeadlineClaims:
    def test_taglets_beats_finetuning_in_few_shot(self, few_shot_results):
        """Paper Section 4.4.1: TAGLETS most beneficial in the few-shot setting."""
        split, taglets_result, finetune_taglet = few_shot_results
        taglets_accuracy = taglets_result.end_model_accuracy(split.test_features,
                                                             split.test_labels)
        finetune_accuracy = finetune_taglet.accuracy(split.test_features,
                                                     split.test_labels)
        assert taglets_accuracy > finetune_accuracy

    def test_ensemble_improves_over_average_module(self, few_shot_results):
        """Paper Section 4.4.3: ensembling beats the average module accuracy."""
        split, taglets_result, _ = few_shot_results
        module_accuracies = taglets_result.module_accuracies(split.test_features,
                                                             split.test_labels)
        ensemble_accuracy = taglets_result.ensemble_accuracy(split.test_features,
                                                             split.test_labels)
        assert ensemble_accuracy >= np.mean(list(module_accuracies.values()))

    def test_end_model_close_to_ensemble(self, few_shot_results):
        """Paper Section 4.4.3: the servable end model stays within a few points
        of the ensemble."""
        split, taglets_result, _ = few_shot_results
        ensemble_accuracy = taglets_result.ensemble_accuracy(split.test_features,
                                                             split.test_labels)
        end_accuracy = taglets_result.end_model_accuracy(split.test_features,
                                                         split.test_labels)
        assert end_accuracy >= ensemble_accuracy - 0.15

    def test_pseudo_labels_are_probability_vectors(self, few_shot_results):
        _, taglets_result, _ = few_shot_results
        pseudo = taglets_result.pseudo_labels
        np.testing.assert_allclose(pseudo.sum(axis=1), np.ones(len(pseudo)))


class TestPruningBehaviour:
    def test_pruning_selects_more_distant_concepts(self, tiny_workspace,
                                                   tiny_backbone):
        """Paper Section 4.4.2 / Figure 4: pruning forces SCADS to retrieve
        less-related auxiliary data (measured via visual prototype distance)."""
        split = tiny_workspace.make_task_split("fmd", shots=1, split_seed=0)
        task = Task.from_split(split, scads=tiny_workspace.scads,
                               backbone=tiny_backbone,
                               wanted_num_related_class=3,
                               images_per_related_class=5)

        def mean_prototype_distance(prune_level):
            controller = Controller(modules=["transfer"],
                                    config=ControllerConfig(prune_level=prune_level))
            selection = controller.select_auxiliary_data(task)
            distances = []
            for spec in split.classes:
                for concept in selection.per_target_concepts.get(spec.name, []):
                    distances.append(tiny_workspace.world.prototype_distance(
                        spec.concept, concept))
            return float(np.mean(distances))

        no_pruning = mean_prototype_distance(None)
        level_1 = mean_prototype_distance(1)
        assert no_pruning < level_1
