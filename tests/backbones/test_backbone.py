"""Tests for backbone encoders and classification models."""

import numpy as np
import pytest

from repro.backbones import (BackboneSpec, ClassificationModel, Encoder,
                             PretrainedBackbone)
from repro.nn import Tensor


SPEC = BackboneSpec(name="test", input_dim=8, hidden_dims=(12,), feature_dim=6,
                    pretraining="none")


class TestEncoder:
    def test_forward_shape_and_nonnegativity(self):
        encoder = Encoder(SPEC, rng=np.random.default_rng(0))
        out = encoder(Tensor(np.random.default_rng(1).normal(size=(5, 8))))
        assert out.shape == (5, 6)
        assert (out.numpy() >= 0).all()  # final ReLU

    def test_feature_dim(self):
        assert Encoder(SPEC).feature_dim == 6


class TestPretrainedBackbone:
    def test_instantiate_loads_weights(self):
        source = Encoder(SPEC, rng=np.random.default_rng(0))
        backbone = PretrainedBackbone(SPEC, source.state_dict(),
                                      pretrained_concepts=["a", "b"])
        clone = backbone.instantiate(rng=np.random.default_rng(5))
        x = Tensor(np.random.default_rng(2).normal(size=(3, 8)))
        np.testing.assert_allclose(source(x).numpy(), clone(x).numpy())
        assert backbone.pretrained_concepts == ["a", "b"]
        assert backbone.feature_dim == 6 and backbone.input_dim == 8

    def test_instances_are_independent(self):
        backbone = PretrainedBackbone(SPEC, Encoder(SPEC).state_dict())
        a = backbone.instantiate()
        b = backbone.instantiate()
        first_param = a.parameters()[0]
        first_param.data[...] = 0.0
        assert not np.allclose(b.parameters()[0].data, 0.0)

    def test_state_dict_returns_copy(self):
        backbone = PretrainedBackbone(SPEC, Encoder(SPEC).state_dict())
        state = backbone.state_dict()
        key = next(iter(state))
        state[key][...] = 0.0
        assert not np.allclose(backbone.state_dict()[key], 0.0)


class TestClassificationModel:
    def test_forward_and_features(self):
        model = ClassificationModel(Encoder(SPEC, rng=np.random.default_rng(0)),
                                    num_classes=4, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(3, 8)))
        assert model(x).shape == (3, 4)
        assert model.features(x).shape == (3, 6)

    def test_replace_head_changes_output_size(self):
        model = ClassificationModel(Encoder(SPEC), num_classes=4)
        encoder_weight_before = model.encoder.parameters()[0].data.copy()
        model.replace_head(9)
        assert model.num_classes == 9
        out = model(Tensor(np.zeros((2, 8))))
        assert out.shape == (2, 9)
        # Replacing the head must not touch the encoder weights.
        np.testing.assert_allclose(model.encoder.parameters()[0].data,
                                   encoder_weight_before)

    def test_set_head_weights(self):
        model = ClassificationModel(Encoder(SPEC), num_classes=3)
        weights = np.random.default_rng(0).normal(size=(6, 3))
        model.set_head_weights(weights, bias=np.zeros(3))
        np.testing.assert_allclose(model.head.weight.data, weights)
        with pytest.raises(ValueError):
            model.set_head_weights(np.zeros((5, 3)))

    def test_from_backbone(self):
        backbone = PretrainedBackbone(SPEC, Encoder(SPEC).state_dict())
        model = ClassificationModel.from_backbone(backbone, num_classes=2)
        assert model.num_classes == 2

    def test_invalid_num_classes(self):
        with pytest.raises(ValueError):
            ClassificationModel(Encoder(SPEC), num_classes=0)
