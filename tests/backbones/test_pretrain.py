"""Tests for backbone pretraining and the registry."""

import numpy as np
import pytest

from repro.backbones import (BackboneRegistry, BackboneSpec, PretrainSpec,
                             bit_imagenet21k, default_registry, pretrain_backbone,
                             resnet50_imagenet1k)
from repro.backbones.backbone import ClassificationModel
from repro.nn import Tensor
from repro.nn.training import evaluate_accuracy, train_classifier, TrainConfig


class TestPretraining:
    def test_pretrained_features_beat_random_features(self, tiny_workspace):
        """Pretraining on related concepts should make a frozen-feature
        classifier better than random features — the premise of the whole
        transfer pipeline."""
        world = tiny_workspace.world
        concepts = [c for c in tiny_workspace.graph.concepts
                    if tiny_workspace.scads.scads.has_images(c)][:100]
        spec = BackboneSpec(name="p", input_dim=world.image_dim, hidden_dims=(32,),
                            feature_dim=24, pretraining="test")
        pretrained = pretrain_backbone(world, concepts, spec,
                                       PretrainSpec(images_per_concept=12, epochs=6))

        split = tiny_workspace.make_task_split("fmd", shots=5, split_seed=0)

        def head_only_accuracy(encoder):
            encoder.eval()
            train_features = encoder(Tensor(split.labeled_features)).data
            test_features = encoder(Tensor(split.test_features)).data
            from repro.nn import MLP

            head = MLP(24, [], split.num_classes, rng=np.random.default_rng(0))
            train_classifier(head, train_features, split.labeled_labels,
                             TrainConfig(epochs=40, lr=0.05, seed=0))
            return evaluate_accuracy(head, test_features, split.test_labels)

        from repro.backbones.backbone import Encoder

        random_encoder = Encoder(spec, rng=np.random.default_rng(9))
        assert (head_only_accuracy(pretrained.instantiate())
                >= head_only_accuracy(random_encoder))

    def test_pretrain_rejects_empty_concepts(self, tiny_workspace):
        spec = BackboneSpec(name="p", input_dim=16, hidden_dims=(8,), feature_dim=8)
        with pytest.raises(ValueError):
            pretrain_backbone(tiny_workspace.world, [], spec)

    def test_named_builders_cover_different_concept_sets(self, tiny_workspace):
        small = resnet50_imagenet1k(tiny_workspace.world, tiny_workspace.graph,
                                    coverage=0.2, feature_dim=8,
                                    pretrain_spec=PretrainSpec(images_per_concept=3,
                                                               epochs=1))
        assert small.spec.pretraining == "imagenet1k"
        full_concepts = [c for c in tiny_workspace.graph.concepts
                         if not c.startswith(("entity",))]
        assert len(small.pretrained_concepts) < len(full_concepts)

    def test_coverage_validation(self, tiny_workspace):
        with pytest.raises(ValueError):
            resnet50_imagenet1k(tiny_workspace.world, tiny_workspace.graph,
                                coverage=0.0)


class TestRegistry:
    def test_caching(self, tiny_workspace):
        registry = BackboneRegistry(tiny_workspace.world, tiny_workspace.graph)
        registry.register("custom", lambda: resnet50_imagenet1k(
            tiny_workspace.world, tiny_workspace.graph, coverage=0.1, feature_dim=8,
            pretrain_spec=PretrainSpec(images_per_concept=3, epochs=1)))
        first = registry.get("custom")
        second = registry.get("custom")
        assert first is second

    def test_unknown_backbone(self, tiny_workspace):
        registry = default_registry(tiny_workspace.world, tiny_workspace.graph)
        assert set(registry.available()) >= {"resnet50", "bit"}
        with pytest.raises(KeyError):
            registry.get("vit")
