"""Tests for target-dataset abstractions and the split protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import ClassSpec, TargetDataset, make_split


def toy_dataset(num_classes=4, per_class=30, dim=6, with_test=False, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(num_classes * per_class, dim))
    labels = np.repeat(np.arange(num_classes), per_class)
    classes = [ClassSpec(name=f"class_{i}", concept=f"class_{i}")
               for i in range(num_classes)]
    test_features = rng.normal(size=(num_classes * 5, dim)) if with_test else None
    test_labels = np.repeat(np.arange(num_classes), 5) if with_test else None
    return TargetDataset(name="toy", classes=classes, domain="natural",
                         features=features, labels=labels,
                         test_features=test_features, test_labels=test_labels)


class TestClassSpec:
    def test_oov_requires_anchors(self):
        with pytest.raises(ValueError):
            ClassSpec(name="oatghurt")
        spec = ClassSpec(name="oatghurt", anchors=("yoghurt",))
        assert spec.concept is None


class TestTargetDataset:
    def test_validation(self):
        with pytest.raises(ValueError):
            TargetDataset(name="bad", classes=[ClassSpec("a", "a")], domain="natural",
                          features=np.zeros((3, 2)), labels=np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            TargetDataset(name="bad", classes=[ClassSpec("a", "a")], domain="natural",
                          features=np.zeros((3, 2)), labels=np.array([0, 0, 5]))

    def test_properties(self):
        dataset = toy_dataset()
        assert dataset.num_classes == 4
        assert dataset.class_names == [f"class_{i}" for i in range(4)]
        assert not dataset.has_predetermined_test
        np.testing.assert_array_equal(dataset.images_per_class(), [30] * 4)

    def test_test_set_must_come_in_pairs(self):
        with pytest.raises(ValueError):
            TargetDataset(name="bad", classes=[ClassSpec("a", "a")], domain="natural",
                          features=np.zeros((2, 2)), labels=np.zeros(2, dtype=int),
                          test_features=np.zeros((1, 2)))


class TestMakeSplit:
    def test_shapes_and_counts(self):
        dataset = toy_dataset()
        split = make_split(dataset, shots=5, split_seed=0, test_per_class=4)
        assert len(split.labeled_features) == 4 * 5
        assert len(split.test_features) == 4 * 4
        assert len(split.unlabeled_features) == 4 * (30 - 4 - 5)
        summary = split.summary()
        assert summary["shots"] == 5 and summary["num_classes"] == 4

    def test_labeled_classes_balanced(self):
        split = make_split(toy_dataset(), shots=3, split_seed=1, test_per_class=2)
        np.testing.assert_array_equal(np.bincount(split.labeled_labels), [3, 3, 3, 3])

    def test_predetermined_test_set_reused(self):
        dataset = toy_dataset(with_test=True)
        split_a = make_split(dataset, shots=1, split_seed=0)
        split_b = make_split(dataset, shots=1, split_seed=5)
        np.testing.assert_allclose(split_a.test_features, split_b.test_features)

    def test_different_split_seed_changes_selection(self):
        dataset = toy_dataset()
        split_a = make_split(dataset, shots=2, split_seed=0, test_per_class=2)
        split_b = make_split(dataset, shots=2, split_seed=1, test_per_class=2)
        assert not np.allclose(split_a.labeled_features, split_b.labeled_features)

    def test_same_seed_is_deterministic(self):
        dataset = toy_dataset()
        split_a = make_split(dataset, shots=2, split_seed=3, test_per_class=2)
        split_b = make_split(dataset, shots=2, split_seed=3, test_per_class=2)
        np.testing.assert_allclose(split_a.labeled_features, split_b.labeled_features)
        np.testing.assert_allclose(split_a.unlabeled_features, split_b.unlabeled_features)

    def test_invalid_shots(self):
        with pytest.raises(ValueError):
            make_split(toy_dataset(), shots=0, split_seed=0)
        with pytest.raises(ValueError):
            make_split(toy_dataset(per_class=6), shots=5, split_seed=0,
                       test_per_class=4)

    def test_too_small_class_for_test(self):
        with pytest.raises(ValueError):
            make_split(toy_dataset(per_class=4), shots=1, split_seed=0,
                       test_per_class=5)


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 5), st.integers(0, 10))
def test_property_split_partitions_train_pool(shots, split_seed):
    dataset = toy_dataset(num_classes=3, per_class=20)
    split = make_split(dataset, shots=shots, split_seed=split_seed, test_per_class=3)
    total = (len(split.labeled_features) + len(split.unlabeled_features)
             + len(split.test_features))
    assert total == len(dataset.features)
    assert len(split.labeled_features) == 3 * shots
