"""Tests for the synthetic evaluation-dataset builders."""

import numpy as np
import pytest

from repro.datasets import (DATASET_BUILDERS, TEST_PER_CLASS, build_dataset,
                            build_fmd, build_grocery_store,
                            build_officehome_clipart, build_officehome_product)
from repro.kg import vocabulary as vocab


class TestBuilders:
    def test_fmd_structure(self, tiny_workspace):
        dataset = build_fmd(tiny_workspace.world, per_class=20, seed=0)
        assert dataset.num_classes == 10
        assert len(dataset.features) == 200
        assert dataset.domain == "natural"
        assert not dataset.has_predetermined_test

    def test_officehome_variants_share_classes_but_not_pixels(self, tiny_workspace):
        product = build_officehome_product(tiny_workspace.world, per_class=5, seed=0)
        clipart = build_officehome_clipart(tiny_workspace.world, per_class=5, seed=0)
        assert product.class_names == clipart.class_names
        assert product.num_classes == 65
        assert not np.allclose(product.features, clipart.features)

    def test_grocery_store_has_oov_classes_and_fixed_test(self, tiny_workspace):
        dataset = build_grocery_store(tiny_workspace.world, per_class=10,
                                      test_per_class=3, seed=0)
        assert dataset.num_classes == 42
        assert dataset.has_predetermined_test
        oov = [c for c in dataset.classes if c.concept is None]
        assert sorted(c.name for c in oov) == sorted(vocab.GROCERY_OOV_CLASSES)
        for spec in oov:
            assert spec.anchors, "OOV classes must declare anchor concepts"

    def test_registry_and_dispatch(self, tiny_workspace):
        assert set(TEST_PER_CLASS) == set(DATASET_BUILDERS)
        dataset = build_dataset("cifar_demo", tiny_workspace.world, seed=0,
                                per_class=8)
        assert dataset.num_classes == 10
        with pytest.raises(KeyError):
            build_dataset("imagenet", tiny_workspace.world)

    def test_datasets_are_deterministic_per_seed(self, tiny_workspace):
        a = build_fmd(tiny_workspace.world, per_class=5, seed=2)
        b = build_fmd(tiny_workspace.world, per_class=5, seed=2)
        np.testing.assert_allclose(a.features, b.features)

    def test_workspace_dataset_caching(self, tiny_workspace):
        first = tiny_workspace.dataset("fmd")
        second = tiny_workspace.dataset("fmd")
        assert first is second

    def test_workspace_split_counts(self, tiny_workspace):
        split = tiny_workspace.make_task_split("fmd", shots=1, split_seed=0)
        assert len(split.labeled_features) == 10
        assert len(split.test_features) == 10 * TEST_PER_CLASS["fmd"]
