"""Tests for learning-rate schedulers."""

import math

import numpy as np
import pytest

from repro.nn import (SGD, Adam, ConstantLR, CosineAnnealingLR, FixMatchCosineLR,
                      MultiStepLR, Parameter, StepLR, WarmupMultiStepLR)


@pytest.fixture()
def optimizer():
    return SGD([Parameter(np.zeros(3))], lr=1.0)


class TestSchedules:
    def test_constant(self, optimizer):
        scheduler = ConstantLR(optimizer)
        assert [scheduler.step() for _ in range(3)] == [1.0, 1.0, 1.0]

    def test_step_lr(self, optimizer):
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = [scheduler.step() for _ in range(5)]
        np.testing.assert_allclose(lrs, [1.0, 1.0, 0.1, 0.1, 0.01])

    def test_multistep(self, optimizer):
        scheduler = MultiStepLR(optimizer, milestones=[2, 4], gamma=0.5)
        lrs = [scheduler.step() for _ in range(6)]
        np.testing.assert_allclose(lrs, [1.0, 1.0, 0.5, 0.5, 0.25, 0.25])

    def test_cosine_endpoints(self, optimizer):
        scheduler = CosineAnnealingLR(optimizer, total_steps=10)
        first = scheduler.get_lr(0)
        last = scheduler.get_lr(10)
        assert first == pytest.approx(1.0)
        assert last == pytest.approx(0.0, abs=1e-12)

    def test_fixmatch_cosine_matches_formula(self, optimizer):
        total = 16
        scheduler = FixMatchCosineLR(optimizer, total_steps=total)
        for k in [0, 4, 8, 16]:
            expected = math.cos(7 * math.pi * k / (16 * total))
            assert scheduler.get_lr(k) == pytest.approx(expected)

    def test_warmup_then_decay(self, optimizer):
        scheduler = WarmupMultiStepLR(optimizer, warmup_steps=4, milestones=[8],
                                      gamma=0.1)
        lrs = [scheduler.step() for _ in range(10)]
        # Linear ramp over the first 4 steps...
        np.testing.assert_allclose(lrs[:4], [0.25, 0.5, 0.75, 1.0])
        # ...full LR until the milestone, then decayed.
        assert lrs[7] == pytest.approx(1.0)
        assert lrs[9] == pytest.approx(0.1)

    def test_applies_lr_to_optimizer(self, optimizer):
        scheduler = MultiStepLR(optimizer, milestones=[1], gamma=0.1)
        scheduler.step()
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.1)

    def test_invalid_arguments(self, optimizer):
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(optimizer, total_steps=0)
        with pytest.raises(ValueError):
            FixMatchCosineLR(optimizer, total_steps=-1)
        with pytest.raises(ValueError):
            WarmupMultiStepLR(optimizer, warmup_steps=-1, milestones=[])
