"""Replay-vs-eager differential suite for DAG-shaped traces.

The DAG generalization of the replay executor (BatchNorm kernels, weight
sharing across views, fan-out/fan-in, summed and weighted-sum losses, the
``step_fn`` / ``forward`` APIs) promises the same contract as the linear
chains of ``test_replay.py``: replayed training is **bit-identical** to the
fused eager path.  Every graph shape here trains twice — replay forced on
vs forced off — and requires exactly equal parameters (and, for BatchNorm,
exactly equal running statistics) after N steps, in float64 and float32,
across the pipeline's optimizers.
"""

import contextlib

import numpy as np
import pytest

from repro.nn import (MLP, Adam, GraphReplay, SGD, Tensor, TrainConfig,
                      default_dtype, train_classifier)
from repro.nn import functional as F
from repro.nn.modules import BatchNorm1d, Dropout, Linear, Module, ReLU

DTYPES = [
    pytest.param(np.float64, id="float64"),
    pytest.param(np.float32, id="float32"),
]

OPTIMIZERS = {
    "sgd_nesterov": lambda params: SGD(params, lr=0.05, momentum=0.9,
                                       nesterov=True, weight_decay=1e-4),
    "sgd_plain": lambda params: SGD(params, lr=0.05),
    "adam": lambda params: Adam(params, lr=3e-3, weight_decay=1e-4),
}


def _dtype_scope(dtype):
    return (default_dtype(dtype) if dtype is not np.float64
            else contextlib.nullcontext())


def _params(model):
    return [p.data.copy() for p in model.parameters()]


def _assert_bit_identical(got, expected):
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert g.dtype == e.dtype
        np.testing.assert_array_equal(g, e)


def _bn_stats(model):
    return [(m.running_mean.copy(), m.running_var.copy())
            for m in model.modules() if isinstance(m, BatchNorm1d)]


# --------------------------------------------------------------------------- #
# BatchNorm1d backbones
# --------------------------------------------------------------------------- #


class TestBatchNormChain:
    """BN backbones replay: batch stats, running-stat updates, and the
    frozen-statistics backward must all match eager exactly."""

    def _train(self, dtype, replay):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(150, 24))
        labels = rng.integers(0, 7, size=150)
        config = TrainConfig(epochs=4, batch_size=32, lr=0.05, momentum=0.9,
                             nesterov=True, weight_decay=1e-4,
                             scheduler="multistep", milestones=(2,),
                             seed=0, replay=replay)
        with _dtype_scope(dtype):
            model = MLP(24, [48, 32], 7, batch_norm=True,
                        rng=np.random.default_rng(1))
            train_classifier(model, features, labels, config)
            return _params(model), _bn_stats(model)

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_replay_bit_identical_to_eager(self, dtype):
        replay_params, replay_stats = self._train(dtype, replay=True)
        eager_params, eager_stats = self._train(dtype, replay=False)
        _assert_bit_identical(replay_params, eager_params)
        for (rm, rv), (em, ev) in zip(replay_stats, eager_stats):
            np.testing.assert_array_equal(rm, em)
            np.testing.assert_array_equal(rv, ev)

    def test_replay_actually_replays_batchnorm(self):
        from repro.nn import ReplayStats

        stats = ReplayStats()
        rng = np.random.default_rng(2)
        features = rng.normal(size=(96, 12))
        labels = rng.integers(0, 4, size=96)
        config = TrainConfig(epochs=3, batch_size=32, seed=0, replay=True,
                             replay_stats=stats)
        model = MLP(12, [24], 4, batch_norm=True, dropout=0.2,
                    rng=np.random.default_rng(3))
        train_classifier(model, features, labels, config)
        assert stats.eager_steps == 0
        assert stats.fallbacks == {}
        assert stats.captures == 1
        assert stats.replays == 3 * 3 - 1

    def test_batchnorm_eval_loss_matches_eager_inference(self):
        from repro.nn.tensor import inference_mode

        rng = np.random.default_rng(4)
        model = MLP(10, [16], 3, batch_norm=True,
                    rng=np.random.default_rng(5))
        optimizer = SGD(model.parameters(), lr=0.1)
        stepper = GraphReplay(model, optimizer, loss="cross_entropy")
        x = rng.normal(size=(20, 10))
        y = rng.integers(0, 3, size=20)
        stepper.step(x, y)
        model.eval()
        compiled = [stepper.eval_loss(x, y) for _ in range(3)]
        with inference_mode():
            eager = F.cross_entropy(model(Tensor(x)), y).item()
        assert compiled == [eager] * 3

    def test_batchnorm_momentum_change_forces_recapture(self):
        # The fingerprint must include BN momentum/eps so a config change
        # recaptures instead of replaying stale kernels.
        rng = np.random.default_rng(6)
        x = rng.normal(size=(32, 8))
        y = rng.integers(0, 4, size=32)

        def run(replay):
            model = MLP(8, [16], 4, batch_norm=True,
                        rng=np.random.default_rng(7))
            bn = [m for m in model.modules()
                  if isinstance(m, BatchNorm1d)][0]
            optimizer = SGD(model.parameters(), lr=0.1)
            stepper = GraphReplay(model, optimizer, enabled=replay)
            for _ in range(3):
                stepper.step(x, y)
            bn.momentum = 0.5
            for _ in range(3):
                stepper.step(x, y)
            return _params(model), _bn_stats(model), stepper.stats

        replay_params, replay_bn, stats = run(True)
        eager_params, eager_bn, _ = run(False)
        assert stats.captures == 2  # momentum change = new signature
        _assert_bit_identical(replay_params, eager_params)
        for (rm, rv), (em, ev) in zip(replay_bn, eager_bn):
            np.testing.assert_array_equal(rm, em)
            np.testing.assert_array_equal(rv, ev)


# --------------------------------------------------------------------------- #
# Fan-out: a shared encoder feeding two heads
# --------------------------------------------------------------------------- #


class _ForkedModel(Module):
    """h = encoder(x); logits = head_a(h) + head_b(h) — fan-out + fan-in."""

    def __init__(self, rng):
        super().__init__()
        self.encoder = Linear(16, 24, rng=rng)
        self.act = ReLU()
        self.head_a = Linear(24, 5, rng=rng)
        self.head_b = Linear(24, 5, rng=rng)

    def forward(self, x):
        h = self.act(self.encoder(x))
        return self.head_a(h) + self.head_b(h)


class TestSharedEncoderFanOut:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("opt", sorted(OPTIMIZERS), ids=str)
    def test_replay_bit_identical_to_eager(self, dtype, opt):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(40, 16))
        y = rng.integers(0, 5, size=40)

        def run(replay):
            with _dtype_scope(dtype):
                model = _ForkedModel(np.random.default_rng(9))
                optimizer = OPTIMIZERS[opt](model.parameters())
                stepper = GraphReplay(model, optimizer, enabled=replay)
                for _ in range(8):
                    stepper.step(x, y)
                return _params(model), stepper.stats

        replay_params, stats = run(True)
        eager_params, _ = run(False)
        assert stats.captures == 1
        assert stats.replays == 7
        assert stats.eager_steps == 0
        _assert_bit_identical(replay_params, eager_params)


# --------------------------------------------------------------------------- #
# The FixMatch two-view consistency step (weight sharing across views)
# --------------------------------------------------------------------------- #


def _two_view(model, batch):
    sup = F.cross_entropy(model(batch["weak_x"]), batch["labels"])
    cons = F.cross_entropy(model(batch["strong_x"]), batch["pseudo"],
                           sample_weights=batch["mask_w"].data)
    return sup + batch["cons_w"] * cons


class TestTwoViewStepFn:
    """The FixMatch-shaped graph: the same model applied to two views, a
    weighted per-sample consistency loss, and a weighted sum of losses."""

    def _run(self, dtype, opt, replay, steps=10):
        with _dtype_scope(dtype):
            dt = np.dtype(dtype)
            rng = np.random.default_rng(10)
            model = MLP(12, [24, 16], 4, dropout=0.2,
                        rng=np.random.default_rng(11))
            optimizer = OPTIMIZERS[opt](model.parameters())
            stepper = GraphReplay(model, optimizer, enabled=replay)
            cons_w = np.asarray(0.7, dtype=dt)
            losses = []
            model.train()
            for _ in range(steps):
                # Fresh views, pseudo labels, and mask every step — values
                # change, shapes stay static, so one plan serves the loop.
                batch = {
                    "weak_x": rng.normal(size=(20, 12)).astype(dt),
                    "labels": rng.integers(0, 4, size=20),
                    "strong_x": rng.normal(size=(48, 12)).astype(dt),
                    "pseudo": rng.integers(0, 4, size=48),
                    "mask_w": (rng.random(48) < 0.6).astype(dt),
                    "cons_w": cons_w,
                }
                losses.append(stepper.step_fn(_two_view, batch))
            return _params(model), losses, stepper.stats

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("opt", sorted(OPTIMIZERS), ids=str)
    def test_replay_bit_identical_to_eager(self, dtype, opt):
        replay_params, replay_losses, stats = self._run(dtype, opt, True)
        eager_params, eager_losses, _ = self._run(dtype, opt, False)
        _assert_bit_identical(replay_params, eager_params)
        assert replay_losses == eager_losses  # loss scalars bitwise equal
        assert stats.captures == 1
        assert stats.replays == 9
        assert stats.eager_steps == 0

    def test_all_masked_out_step_replays(self):
        # A step where every pseudo label is rejected (all-zero weights)
        # must still replay and contribute exactly zero consistency
        # gradient.
        def run(replay):
            rng = np.random.default_rng(12)
            model = MLP(8, [16], 3, rng=np.random.default_rng(13))
            optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
            stepper = GraphReplay(model, optimizer, enabled=replay)
            for i in range(6):
                batch = {
                    "weak_x": rng.normal(size=(10, 8)),
                    "labels": rng.integers(0, 3, size=10),
                    "strong_x": rng.normal(size=(24, 8)),
                    "pseudo": rng.integers(0, 3, size=24),
                    "mask_w": (np.zeros(24) if i % 2 else np.ones(24)),
                    "cons_w": np.asarray(1.0),
                }
                stepper.step_fn(_two_view, batch)
            return _params(model), stepper.stats

        replay_params, stats = run(True)
        eager_params, _ = run(False)
        assert stats.captures == 1
        assert stats.replays == 5
        _assert_bit_identical(replay_params, eager_params)

    def test_changed_weight_scalar_is_picked_up_without_recapture(self):
        # cons_w is a step *input*, so changing its value flows into the
        # replayed kernels with no recapture.
        rng = np.random.default_rng(14)
        batch_base = {
            "weak_x": rng.normal(size=(10, 8)),
            "labels": rng.integers(0, 3, size=10),
            "strong_x": rng.normal(size=(16, 8)),
            "pseudo": rng.integers(0, 3, size=16),
            "mask_w": np.ones(16),
        }

        def run(replay):
            model = MLP(8, [16], 3, rng=np.random.default_rng(15))
            optimizer = SGD(model.parameters(), lr=0.1)
            stepper = GraphReplay(model, optimizer, enabled=replay)
            for w in (0.25, 0.5, 1.0, 2.0):
                stepper.step_fn(_two_view,
                                dict(batch_base, cons_w=np.asarray(w)))
            return _params(model), stepper.stats

        replay_params, stats = run(True)
        eager_params, _ = run(False)
        assert stats.captures == 1
        assert stats.replays == 3
        _assert_bit_identical(replay_params, eager_params)


# --------------------------------------------------------------------------- #
# Summed multi-loss graphs (fan-in over loss kinds)
# --------------------------------------------------------------------------- #


def _multi_loss(model, batch):
    ce = F.cross_entropy(model(batch["x1"]), batch["y1"])
    reg = F.l2_loss(model(batch["x2"]), batch["y2"].data)
    return ce + batch["w"] * reg


def _summed_loss(model, batch):
    a = F.cross_entropy(model(batch["x1"]), batch["y1"])
    b = F.soft_cross_entropy(model(batch["x2"]), batch["y2"].data)
    return a + b


class TestMultiLossGraphs:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("fn", [_multi_loss, _summed_loss],
                             ids=["weighted_ce_plus_l2", "ce_plus_soft_ce"])
    def test_replay_bit_identical_to_eager(self, dtype, fn):
        def run(replay):
            with _dtype_scope(dtype):
                dt = np.dtype(dtype)
                rng = np.random.default_rng(16)
                model = MLP(10, [20], 6, rng=np.random.default_rng(17))
                optimizer = Adam(model.parameters(), lr=1e-2)
                stepper = GraphReplay(model, optimizer, enabled=replay)
                losses = []
                for _ in range(8):
                    y2 = (rng.dirichlet(np.ones(6), size=24)
                          if fn is _summed_loss
                          else rng.normal(size=(24, 6)))
                    batch = {
                        "x1": rng.normal(size=(16, 10)).astype(dt),
                        "y1": rng.integers(0, 6, size=16),
                        "x2": rng.normal(size=(24, 10)).astype(dt),
                        "y2": y2.astype(dt),
                        "w": np.asarray(0.3, dtype=dt),
                    }
                    losses.append(stepper.step_fn(fn, batch))
                return _params(model), losses, stepper.stats

        replay_params, replay_losses, stats = run(True)
        eager_params, eager_losses, _ = run(False)
        assert stats.captures == 1
        assert stats.replays == 7
        assert stats.eager_steps == 0
        assert replay_losses == eager_losses
        _assert_bit_identical(replay_params, eager_params)


def _shared_logits(model, batch):
    # One forward's logits consumed by two losses: grad deposits into the
    # same logits buffer must write-then-accumulate in eager order.
    logits = model(batch["x"])
    return F.cross_entropy(logits, batch["y"]) \
        + F.soft_cross_entropy(logits, batch["p"].data)


class TestSharedLogitsTwoLosses:
    def test_replay_bit_identical_to_eager(self):
        def run(replay):
            rng = np.random.default_rng(22)
            model = MLP(8, [16], 4, rng=np.random.default_rng(23))
            optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
            stepper = GraphReplay(model, optimizer, enabled=replay)
            losses = []
            for _ in range(6):
                batch = {"x": rng.normal(size=(12, 8)),
                         "y": rng.integers(0, 4, size=12),
                         "p": rng.dirichlet(np.ones(4), size=12)}
                losses.append(stepper.step_fn(_shared_logits, batch))
            return _params(model), losses, stepper.stats

        replay_params, replay_losses, stats = run(True)
        eager_params, eager_losses, _ = run(False)
        assert stats.captures == 1
        assert stats.eager_steps == 0
        assert replay_losses == eager_losses
        _assert_bit_identical(replay_params, eager_params)


def _bn_two_view(model, batch):
    return F.cross_entropy(model(batch["x1"]), batch["y1"]) \
        + F.cross_entropy(model(batch["x2"]), batch["y2"])


class TestBatchNormSharedAcrossViews:
    def test_replay_bit_identical_to_eager(self):
        # A BatchNorm backbone applied to two views in one step: the
        # running stats update twice per step (in view order) and the
        # gamma/beta gradients accumulate across applications.
        def run(replay):
            rng = np.random.default_rng(24)
            model = MLP(8, [16], 4, batch_norm=True,
                        rng=np.random.default_rng(25))
            optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
            stepper = GraphReplay(model, optimizer, enabled=replay)
            for _ in range(6):
                batch = {"x1": rng.normal(size=(10, 8)),
                         "y1": rng.integers(0, 4, size=10),
                         "x2": rng.normal(size=(14, 8)),
                         "y2": rng.integers(0, 4, size=14)}
                stepper.step_fn(_bn_two_view, batch)
            return _params(model), _bn_stats(model), stepper.stats

        replay_params, replay_bn, stats = run(True)
        eager_params, eager_bn, _ = run(False)
        assert stats.captures == 1
        assert stats.eager_steps == 0
        _assert_bit_identical(replay_params, eager_params)
        for (rm, rv), (em, ev) in zip(replay_bn, eager_bn):
            np.testing.assert_array_equal(rm, em)
            np.testing.assert_array_equal(rv, ev)


class _Heads(Module):
    """Two independent heads behind one optimizer (disjoint coverage)."""

    def __init__(self):
        super().__init__()
        self.h1 = Linear(8, 4, rng=np.random.default_rng(26))
        self.h2 = Linear(8, 4, rng=np.random.default_rng(27))

    def forward(self, x):  # pragma: no cover - heads are called directly
        return self.h1(x)


def _h1_only(model, batch):
    return F.cross_entropy(model.h1(batch["x"]), batch["y"])


def _h2_only(model, batch):
    return F.cross_entropy(model.h2(batch["x"]), batch["y"])


class TestPartialParameterCoverage:
    def test_alternating_step_fns_match_eager(self):
        # Two step functions touching disjoint heads of one optimizer:
        # a replayed plan must clear the gradients of the parameters it
        # does not cover (eager's zero_grad does), or the other head's
        # stale gradient would be re-applied.
        def run(replay):
            rng = np.random.default_rng(28)
            model = _Heads()
            optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
            stepper = GraphReplay(model, optimizer, enabled=replay)
            for i in range(8):
                batch = {"x": rng.normal(size=(10, 8)),
                         "y": rng.integers(0, 4, size=10)}
                stepper.step_fn(_h1_only if i % 2 == 0 else _h2_only, batch)
            return _params(model), stepper.stats

        replay_params, stats = run(True)
        eager_params, _ = run(False)
        assert stats.captures == 2  # one plan per step function
        assert stats.eager_steps == 0
        _assert_bit_identical(replay_params, eager_params)


class TestAliasedInputs:
    def test_same_array_under_two_keys_falls_back_to_eager(self):
        # Two input keys bound to the same array at capture time are
        # ambiguous (a later replay may un-alias them), so the capture is
        # rejected and the loop runs eagerly — never a silently mis-bound
        # plan.
        def fn(model, batch):
            return F.cross_entropy(model(batch["xa"]), batch["ya"]) \
                + F.cross_entropy(model(batch["xb"]), batch["yb"])

        rng = np.random.default_rng(31)
        x = rng.normal(size=(10, 6))
        ya = rng.integers(0, 3, size=10)
        yb = rng.integers(0, 3, size=10)

        def run(replay):
            model = MLP(6, [12], 3, rng=np.random.default_rng(32))
            optimizer = SGD(model.parameters(), lr=0.1)
            stepper = GraphReplay(model, optimizer, enabled=replay)
            # Step 1 aliases ya under both target keys; step 2 un-aliases.
            stepper.step_fn(fn, {"xa": x, "ya": ya, "xb": x, "yb": ya})
            stepper.step_fn(fn, {"xa": x, "ya": ya, "xb": x, "yb": yb})
            return _params(model), stepper.stats

        replay_params, stats = run(True)
        eager_params, _ = run(False)
        assert stats.replays == 0
        assert stats.eager_steps == 2
        assert any("aliases" in r or "multiple step inputs" in r
                   for r in stats.fallbacks)
        _assert_bit_identical(replay_params, eager_params)


class TestIntegerFeatures:
    def test_integer_inputs_cast_like_eager(self):
        # Integer feature arrays go through the same Tensor(x) cast as the
        # eager step — replay must not hand the raw int array to the model.
        rng = np.random.default_rng(29)
        x = rng.integers(-3, 4, size=(20, 6))
        y = rng.integers(0, 3, size=20)

        def run(replay):
            model = MLP(6, [12], 3, rng=np.random.default_rng(30))
            optimizer = SGD(model.parameters(), lr=0.1)
            stepper = GraphReplay(model, optimizer, enabled=replay)
            losses = [stepper.step(x, y) for _ in range(5)]
            stepper.eval_loss(x, y)
            stepper.forward(x)
            return _params(model), losses, stepper.stats

        replay_params, replay_losses, stats = run(True)
        eager_params, eager_losses, _ = run(False)
        assert replay_losses == eager_losses
        assert stats.eager_steps == 0
        _assert_bit_identical(replay_params, eager_params)


# --------------------------------------------------------------------------- #
# The compiled inference forward
# --------------------------------------------------------------------------- #


class TestCompiledForward:
    def test_forward_matches_eager_inference(self):
        from repro.nn.tensor import inference_mode

        rng = np.random.default_rng(18)
        model = MLP(8, [16], 4, rng=np.random.default_rng(19))
        model.eval()
        optimizer = SGD(model.parameters(), lr=0.1)
        stepper = GraphReplay(model, optimizer)
        x = rng.normal(size=(12, 8))
        compiled = [stepper.forward(x).copy() for _ in range(3)]
        with inference_mode():
            eager = model(Tensor(x)).data
        for got in compiled:
            np.testing.assert_array_equal(got, eager)
        assert stepper.stats.captures == 1
        assert stepper.stats.replays == 2

    def test_forward_detects_weight_updates(self):
        rng = np.random.default_rng(20)
        model = MLP(8, [16], 4, rng=np.random.default_rng(21))
        model.eval()
        optimizer = SGD(model.parameters(), lr=0.1)
        stepper = GraphReplay(model, optimizer)
        x = rng.normal(size=(12, 8))
        before = stepper.forward(x).copy()
        # In-place weight updates are picked up without recapture (kernels
        # read parameters through the live module attributes).
        for p in model.parameters():
            p.data += 0.1
        after = stepper.forward(x).copy()
        assert stepper.stats.captures == 1  # no recapture needed
        assert not np.array_equal(before, after)
