"""Tests for model checkpointing."""

import numpy as np
import pytest

from repro.nn import (MLP, StateDictMismatchError, Tensor, default_dtype,
                      load_into_module, load_state_dict, save_module,
                      save_state_dict, state_dict_digest, state_dict_manifest,
                      validate_state_dict)


class TestSerialization:
    def test_state_dict_roundtrip(self, tmp_path):
        path = str(tmp_path / "checkpoints" / "model.npz")
        state = {"layer.weight": np.random.default_rng(0).normal(size=(3, 4)),
                 "layer.bias": np.zeros(4)}
        save_state_dict(state, path)
        loaded = load_state_dict(path)
        assert set(loaded) == set(state)
        np.testing.assert_allclose(loaded["layer.weight"], state["layer.weight"])

    def test_module_roundtrip_preserves_predictions(self, tmp_path):
        path = str(tmp_path / "mlp.npz")
        source = MLP(5, [7], 3, rng=np.random.default_rng(0))
        save_module(source, path)
        target = MLP(5, [7], 3, rng=np.random.default_rng(1))
        load_into_module(target, path)
        x = Tensor(np.random.default_rng(2).normal(size=(4, 5)))
        np.testing.assert_allclose(source(x).numpy(), target(x).numpy())

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state_dict(str(tmp_path / "missing.npz"))

    def test_shape_mismatch_on_load(self, tmp_path):
        path = str(tmp_path / "mlp.npz")
        save_module(MLP(5, [7], 3), path)
        wrong = MLP(5, [9], 3)
        with pytest.raises((ValueError, KeyError)):
            load_into_module(wrong, path)


class TestStrictValidation:
    """Mismatched archives must fail loudly at load time, naming the
    offending parameters — not at the first forward with a shape error."""

    def test_shape_mismatch_names_the_parameter_and_path(self, tmp_path):
        path = str(tmp_path / "mlp.npz")
        save_module(MLP(5, [7], 3), path)
        wrong = MLP(5, [9], 3)
        with pytest.raises(StateDictMismatchError) as excinfo:
            load_into_module(wrong, path)
        message = str(excinfo.value)
        assert "net.layers.0.weight" in message
        assert "(5, 9)" in message and "(5, 7)" in message
        assert path in message

    def test_missing_and_unexpected_keys_all_reported(self, tmp_path):
        path = str(tmp_path / "shallow.npz")
        save_module(MLP(5, [7], 3), path)        # layers 0 and 2
        deeper = MLP(5, [7, 7], 3)               # layers 0, 2, 4
        with pytest.raises(StateDictMismatchError) as excinfo:
            load_into_module(deeper, path)
        message = str(excinfo.value)
        assert "missing key" in message and "net.layers.4.weight" in message

    def test_extra_archive_keys_reported(self, tmp_path):
        path = str(tmp_path / "extra.npz")
        module = MLP(5, [7], 3)
        state = module.state_dict()
        state["rogue.weight"] = np.zeros((2, 2))
        save_state_dict(state, path)
        with pytest.raises(StateDictMismatchError, match="rogue.weight"):
            load_into_module(MLP(5, [7], 3), path)

    def test_incompatible_dtype_rejected(self):
        module = MLP(5, [7], 3)
        state = module.state_dict()
        first = next(iter(state))
        state[first] = state[first].astype(np.int64)
        with pytest.raises(StateDictMismatchError, match="dtype mismatch"):
            validate_state_dict(module, state)

    def test_float_cross_precision_cast_allowed(self, tmp_path):
        """float64 checkpoints still load into float32 fast-mode models."""
        path = str(tmp_path / "f64.npz")
        source = MLP(5, [7], 3, rng=np.random.default_rng(0))
        save_module(source, path)
        with default_dtype("float32"):
            target = MLP(5, [7], 3)
        load_into_module(target, path)   # strict, but the cast is sanctioned
        assert target.net.layers[0].weight.data.dtype == np.float32

    def test_non_strict_load_preserves_old_behavior(self, tmp_path):
        path = str(tmp_path / "mlp.npz")
        save_module(MLP(5, [7], 3), path)
        wrong = MLP(5, [9], 3)
        # strict=False defers to Module.load_state_dict's first-error report.
        with pytest.raises((ValueError, KeyError)):
            load_into_module(wrong, path, strict=False)

    def test_validate_accepts_matching_state(self, tmp_path):
        module = MLP(5, [7], 3)
        validate_state_dict(module, module.state_dict())


class TestManifestHelpers:
    def test_manifest_describes_every_entry(self):
        module = MLP(5, [7], 3)
        state = module.state_dict()
        manifest = state_dict_manifest(state)
        assert set(manifest) == set(state)
        assert manifest["net.layers.0.weight"] == {"shape": [5, 7],
                                                   "dtype": "float64"}

    def test_digest_is_content_addressed(self):
        module = MLP(5, [7], 3, rng=np.random.default_rng(0))
        state = module.state_dict()
        assert state_dict_digest(state) == state_dict_digest(dict(state))
        mutated = {k: v.copy() for k, v in state.items()}
        key = next(iter(mutated))
        mutated[key][0] += 1
        assert state_dict_digest(state) != state_dict_digest(mutated)
        # dtype changes alone also change the digest
        recast = {k: v.astype(np.float32) for k, v in state.items()}
        assert state_dict_digest(state) != state_dict_digest(recast)
