"""Tests for model checkpointing."""

import numpy as np
import pytest

from repro.nn import (MLP, load_into_module, load_state_dict, save_module,
                      save_state_dict, Tensor)


class TestSerialization:
    def test_state_dict_roundtrip(self, tmp_path):
        path = str(tmp_path / "checkpoints" / "model.npz")
        state = {"layer.weight": np.random.default_rng(0).normal(size=(3, 4)),
                 "layer.bias": np.zeros(4)}
        save_state_dict(state, path)
        loaded = load_state_dict(path)
        assert set(loaded) == set(state)
        np.testing.assert_allclose(loaded["layer.weight"], state["layer.weight"])

    def test_module_roundtrip_preserves_predictions(self, tmp_path):
        path = str(tmp_path / "mlp.npz")
        source = MLP(5, [7], 3, rng=np.random.default_rng(0))
        save_module(source, path)
        target = MLP(5, [7], 3, rng=np.random.default_rng(1))
        load_into_module(target, path)
        x = Tensor(np.random.default_rng(2).normal(size=(4, 5)))
        np.testing.assert_allclose(source(x).numpy(), target(x).numpy())

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state_dict(str(tmp_path / "missing.npz"))

    def test_shape_mismatch_on_load(self, tmp_path):
        path = str(tmp_path / "mlp.npz")
        save_module(MLP(5, [7], 3), path)
        wrong = MLP(5, [9], 3)
        with pytest.raises((ValueError, KeyError)):
            load_into_module(wrong, path)
