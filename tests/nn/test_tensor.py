"""Unit and property-based tests for the autograd engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, concatenate, stack


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function of an array."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x)
        flat[i] = original - eps
        lower = fn(x)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


class TestBasicOps:
    def test_add_backward_broadcast(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        out = (a + b).sum()
        out.backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3.0 * np.ones(4))

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0, 5.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0 / 3.0])
        np.testing.assert_allclose(b.grad, [-6.0 / 9.0])

    def test_matmul_backward_matches_numerical(self):
        rng = np.random.default_rng(0)
        a_value = rng.normal(size=(3, 4))
        b_value = rng.normal(size=(4, 2))

        a = Tensor(a_value.copy(), requires_grad=True)
        b = Tensor(b_value.copy(), requires_grad=True)
        (a @ b).sum().backward()

        num_a = numerical_gradient(lambda x: (x @ b_value).sum(), a_value.copy())
        num_b = numerical_gradient(lambda x: (a_value @ x).sum(), b_value.copy())
        np.testing.assert_allclose(a.grad, num_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, num_b, atol=1e-5)

    def test_pow_and_sqrt(self):
        x = Tensor([4.0, 9.0], requires_grad=True)
        x.sqrt().sum().backward()
        np.testing.assert_allclose(x.grad, [0.25, 1.0 / 6.0])

    def test_neg_sub(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (5.0 - x).sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, -1.0])

    def test_scalar_interop(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        out = (2.0 * x + 1.0) / 2.0
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])


class TestElementwise:
    @pytest.mark.parametrize("op,derivative", [
        ("exp", lambda x: np.exp(x)),
        ("tanh", lambda x: 1 - np.tanh(x) ** 2),
        ("sigmoid", lambda x: (1 / (1 + np.exp(-x))) * (1 - 1 / (1 + np.exp(-x)))),
    ])
    def test_unary_gradients(self, op, derivative):
        value = np.array([-0.5, 0.1, 1.2])
        x = Tensor(value.copy(), requires_grad=True)
        getattr(x, op)().sum().backward()
        np.testing.assert_allclose(x.grad, derivative(value), atol=1e-8)

    def test_relu_gradient_mask(self):
        x = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0])

    def test_log_gradient(self):
        x = Tensor([0.5, 2.0], requires_grad=True)
        x.log().sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.5])

    def test_clip_gradient(self):
        x = Tensor([-2.0, 0.0, 2.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_abs_gradient(self):
        x = Tensor([-2.0, 3.0], requires_grad=True)
        x.abs().sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, 1.0])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.sum(axis=0).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        x = Tensor(np.ones((4, 5)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((4, 5), 1.0 / 20.0))

    def test_max_gradient_goes_to_argmax(self):
        x = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_reshape_transpose_roundtrip(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = x.reshape(3, 2).T
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_getitem_gradient(self):
        x = Tensor(np.arange(9.0).reshape(3, 3), requires_grad=True)
        x[1].sum().backward()
        expected = np.zeros((3, 3))
        expected[1] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_stack_and_concatenate(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(2 * np.ones(3), requires_grad=True)
        stacked = stack([a, b], axis=0)
        assert stacked.shape == (2, 3)
        stacked.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))

        a.zero_grad()
        b.zero_grad()
        joined = concatenate([a, b], axis=0)
        assert joined.shape == (6,)
        (joined * joined).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones(3))
        np.testing.assert_allclose(b.grad, 4 * np.ones(3))


class TestGraphMechanics:
    def test_backward_requires_grad(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_detach_cuts_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_gradient_accumulation_over_reuse(self):
        x = Tensor([3.0], requires_grad=True)
        y = x * x  # dy/dx = 2x via two parents of the same tensor
        y.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_deep_chain_does_not_recurse(self):
        # The topological sort is iterative, so very deep graphs must not hit
        # Python's recursion limit.
        x = Tensor([1.0], requires_grad=True)
        out = x
        for _ in range(3000):
            out = out + 1.0
        out.backward()
        np.testing.assert_allclose(x.grad, [1.0])


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float64, hnp.array_shapes(min_dims=2, max_dims=2,
                                               min_side=1, max_side=5),
                  elements=st.floats(-3, 3)))
def test_property_sum_gradient_is_ones(values):
    x = Tensor(values.copy(), requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(values))


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float64, (4, 3), elements=st.floats(-3, 3)),
       hnp.arrays(np.float64, (4, 3), elements=st.floats(-3, 3)))
def test_property_addition_is_commutative(a, b):
    left = (Tensor(a) + Tensor(b)).numpy()
    right = (Tensor(b) + Tensor(a)).numpy()
    np.testing.assert_allclose(left, right)


@settings(max_examples=25, deadline=None)
@given(hnp.arrays(np.float64, (3, 4), elements=st.floats(-2, 2, allow_nan=False)))
def test_property_relu_output_nonnegative_and_matches_numpy(values):
    out = Tensor(values).relu().numpy()
    assert (out >= 0).all()
    np.testing.assert_allclose(out, np.maximum(values, 0))
