"""Gradient-correctness tests for the fused engine ops.

The fused ``linear`` and ``softmax_cross_entropy`` kernels replace chains of
primitive tape nodes with single hand-written backward closures, so their
gradients are checked against central finite differences in both float32 and
float64, and against the primitive-composed reference implementations the
seed engine used.  The ``no_grad`` inference mode is checked to build no
backward tape at all.
"""

import numpy as np
import pytest

from repro.nn import Tensor, default_dtype, no_grad, use_fused_ops
from repro.nn import functional as F
from repro.nn.modules import Linear
from repro.nn.tensor import is_grad_enabled

# Acceptance tolerances per dtype: float32 carries ~7 decimal digits, so the
# finite-difference probe uses a larger step and looser tolerance.
DTYPE_CASES = [
    pytest.param(np.float64, 1e-6, 1e-7, id="float64"),
    pytest.param(np.float32, 1e-2, 1e-4, id="float32"),
]


def finite_difference(fn, x: np.ndarray, eps: float) -> np.ndarray:
    """Central finite-difference gradient of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x)
        flat[i] = original - eps
        lower = fn(x)
        flat[i] = original
        out[i] = (upper - lower) / (2.0 * eps)
    return grad


class TestFusedLinearGradients:
    @pytest.mark.parametrize("dtype,eps,tol", DTYPE_CASES)
    def test_matches_finite_differences(self, dtype, eps, tol):
        rng = np.random.default_rng(0)
        with default_dtype(dtype):
            x0 = rng.normal(size=(5, 4)).astype(dtype)
            w0 = rng.normal(size=(4, 3)).astype(dtype)
            b0 = rng.normal(size=3).astype(dtype)

            x = Tensor(x0.copy(), requires_grad=True)
            w = Tensor(w0.copy(), requires_grad=True)
            b = Tensor(b0.copy(), requires_grad=True)
            out = F.linear(x, w, b)
            assert out.dtype == dtype
            out.sum().backward()

            fd_x = finite_difference(
                lambda a: float((a @ w0.astype(np.float64)
                                 + b0.astype(np.float64)).sum()),
                x0.astype(np.float64).copy(), eps)
            fd_w = finite_difference(
                lambda a: float((x0.astype(np.float64) @ a
                                 + b0.astype(np.float64)).sum()),
                w0.astype(np.float64).copy(), eps)
            fd_b = finite_difference(
                lambda a: float((x0.astype(np.float64)
                                 @ w0.astype(np.float64) + a).sum()),
                b0.astype(np.float64).copy(), eps)
            np.testing.assert_allclose(x.grad, fd_x, atol=tol, rtol=tol)
            np.testing.assert_allclose(w.grad, fd_w, atol=tol, rtol=tol)
            np.testing.assert_allclose(b.grad, fd_b, atol=tol, rtol=tol)

    def test_matches_unfused_reference(self):
        rng = np.random.default_rng(1)
        x0 = rng.normal(size=(6, 5))
        layer = Linear(5, 3, rng=np.random.default_rng(2))

        out_fused = layer(Tensor(x0))
        out_fused.sum().backward()
        fused_grads = [p.grad.copy() for p in layer.parameters()]
        layer.zero_grad()

        with use_fused_ops(False):
            out_ref = layer(Tensor(x0))
            out_ref.sum().backward()
        ref_grads = [p.grad.copy() for p in layer.parameters()]

        np.testing.assert_allclose(out_fused.data, out_ref.data, atol=1e-12)
        for fused, ref in zip(fused_grads, ref_grads):
            np.testing.assert_allclose(fused, ref, atol=1e-12)


class TestFusedCrossEntropyGradients:
    @pytest.mark.parametrize("dtype,eps,tol", DTYPE_CASES)
    def test_hard_targets_match_finite_differences(self, dtype, eps, tol):
        rng = np.random.default_rng(3)
        z0 = rng.normal(size=(7, 4)).astype(dtype)
        targets = rng.integers(0, 4, size=7)
        with default_dtype(dtype):
            logits = Tensor(z0.copy(), requires_grad=True)
            loss = F.cross_entropy(logits, targets)
            loss.backward()

        def ref_loss(z):
            shifted = z - z.max(axis=1, keepdims=True)
            logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
            return float(-logp[np.arange(len(targets)), targets].mean())

        fd = finite_difference(ref_loss, z0.astype(np.float64).copy(), eps)
        np.testing.assert_allclose(logits.grad, fd, atol=tol, rtol=tol)

    @pytest.mark.parametrize("dtype,eps,tol", DTYPE_CASES)
    def test_soft_targets_match_finite_differences(self, dtype, eps, tol):
        rng = np.random.default_rng(4)
        z0 = rng.normal(size=(5, 3)).astype(dtype)
        probs = rng.dirichlet(np.ones(3), size=5)
        with default_dtype(dtype):
            logits = Tensor(z0.copy(), requires_grad=True)
            loss = F.soft_cross_entropy(logits, probs.astype(dtype))
            loss.backward()

        def ref_loss(z):
            shifted = z - z.max(axis=1, keepdims=True)
            logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
            return float(-(probs * logp).sum() / len(z))

        fd = finite_difference(ref_loss, z0.astype(np.float64).copy(), eps)
        np.testing.assert_allclose(logits.grad, fd, atol=tol, rtol=tol)

    def test_weighted_matches_unfused_reference(self):
        rng = np.random.default_rng(5)
        z0 = rng.normal(size=(6, 4))
        targets = rng.integers(0, 4, size=6)
        weights = rng.random(6)

        fused_logits = Tensor(z0.copy(), requires_grad=True)
        fused = F.cross_entropy(fused_logits, targets, sample_weights=weights)
        fused.backward()

        with use_fused_ops(False):
            ref_logits = Tensor(z0.copy(), requires_grad=True)
            ref = F.cross_entropy(ref_logits, targets, sample_weights=weights)
            ref.backward()

        assert fused.item() == pytest.approx(ref.item(), rel=1e-12)
        np.testing.assert_allclose(fused_logits.grad, ref_logits.grad,
                                   atol=1e-12)

    def test_soft_weighted_matches_unfused_reference(self):
        rng = np.random.default_rng(6)
        z0 = rng.normal(size=(5, 3))
        probs = rng.dirichlet(np.ones(3), size=5)
        weights = rng.random(5)

        fused_logits = Tensor(z0.copy(), requires_grad=True)
        fused = F.soft_cross_entropy(fused_logits, probs, sample_weights=weights)
        fused.backward()

        with use_fused_ops(False):
            ref_logits = Tensor(z0.copy(), requires_grad=True)
            ref = F.soft_cross_entropy(ref_logits, probs, sample_weights=weights)
            ref.backward()

        assert fused.item() == pytest.approx(ref.item(), rel=1e-12)
        np.testing.assert_allclose(fused_logits.grad, ref_logits.grad,
                                   atol=1e-12)

    def test_out_of_range_labels_raise(self):
        # The fused kernel must keep the reference path's range validation:
        # numpy indexing would otherwise silently wrap negative labels.
        logits = Tensor(np.zeros((2, 3)), requires_grad=True)
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.array([-1, 2]))
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.array([0, 3]))

    def test_mse_broadcast_targets_fall_back_to_reference(self):
        # Broadcastable (non-equal-shape) targets must take the reference
        # path: same loss value and a gradient shaped like the predictions.
        predictions = Tensor(np.ones((3, 1)), requires_grad=True)
        loss = F.mse_loss(predictions, np.zeros((3, 4)))
        assert loss.item() == pytest.approx(1.0)
        loss.backward()
        assert predictions.grad.shape == (3, 1)

    def test_gradient_flows_through_upstream_ops(self):
        # The fused loss must keep the tape alive above it.
        x = Tensor(np.random.default_rng(7).normal(size=(4, 3)),
                   requires_grad=True)
        loss = F.cross_entropy(x * 2.0, np.array([0, 1, 2, 0]))
        loss.backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0


class TestNoGradMode:
    def test_no_backward_closures_allocated(self):
        layer = Linear(4, 3, rng=np.random.default_rng(8))
        x = Tensor(np.zeros((2, 4)))
        with no_grad():
            out = layer(x)
            deeper = (out.relu() + 1.0) * 2.0
        for tensor in (out, deeper):
            assert tensor.requires_grad is False
            assert tensor._backward is None
            assert tensor._parents == ()

    def test_restores_grad_mode_on_exit(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()
        layer = Linear(2, 2, rng=np.random.default_rng(9))
        out = layer(Tensor(np.zeros((1, 2))))
        assert out.requires_grad and out._backward is not None

    def test_backward_raises_on_no_grad_output(self):
        with no_grad():
            out = Linear(2, 2, rng=np.random.default_rng(10))(
                Tensor(np.zeros((1, 2))))
        with pytest.raises(RuntimeError):
            out.backward()
