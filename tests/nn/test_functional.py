"""Tests for loss functions and activations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor
from repro.nn import functional as F


class TestOneHot:
    def test_basic(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([0, 3]), 3)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_empty(self):
        assert F.one_hot(np.array([], dtype=int), 4).shape == (0, 4)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(5, 7)))
        probs = F.softmax(logits).numpy()
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))
        assert (probs >= 0).all()

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        a = F.softmax(Tensor(logits)).numpy()
        b = F.softmax(Tensor(logits + 100.0)).numpy()
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_log_softmax_consistency(self):
        logits = Tensor(np.random.default_rng(1).normal(size=(4, 3)))
        log_probs = F.log_softmax(logits).numpy()
        np.testing.assert_allclose(np.exp(log_probs), F.softmax(logits).numpy(),
                                   atol=1e-12)

    def test_numerical_stability_large_logits(self):
        probs = F.softmax(Tensor([[1e4, 0.0, -1e4]])).numpy()
        assert np.isfinite(probs).all()
        np.testing.assert_allclose(probs.sum(), 1.0)


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = np.array([[2.0, 1.0, 0.1], [0.5, 2.5, 0.0]])
        targets = np.array([0, 1])
        loss = F.cross_entropy(Tensor(logits), targets).item()
        manual = -np.mean([np.log(np.exp(logits[i, t]) / np.exp(logits[i]).sum())
                           for i, t in enumerate(targets)])
        assert loss == pytest.approx(manual, rel=1e-9)

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = F.cross_entropy(Tensor(logits), np.array([0, 1])).item()
        assert loss < 1e-6

    def test_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        F.cross_entropy(logits, np.array([1])).backward()
        # Gradient should be negative for the target class, positive elsewhere.
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0 and logits.grad[0, 2] > 0

    def test_sample_weights(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        targets = np.array([0, 0])
        unweighted = F.cross_entropy(Tensor(logits), targets).item()
        weighted = F.cross_entropy(Tensor(logits), targets,
                                   sample_weights=np.array([1.0, 0.0])).item()
        assert weighted < unweighted


class TestSoftCrossEntropy:
    def test_equals_hard_ce_for_one_hot_targets(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(6, 4))
        targets = rng.integers(0, 4, size=6)
        hard = F.cross_entropy(Tensor(logits), targets).item()
        soft = F.soft_cross_entropy(Tensor(logits), F.one_hot(targets, 4)).item()
        assert hard == pytest.approx(soft, rel=1e-9)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.soft_cross_entropy(Tensor(np.zeros((2, 3))), np.zeros((2, 4)))

    def test_uniform_targets_minimized_by_uniform_logits(self):
        uniform = np.full((1, 4), 0.25)
        loss_uniform = F.soft_cross_entropy(Tensor(np.zeros((1, 4))), uniform).item()
        loss_peaked = F.soft_cross_entropy(Tensor(np.array([[10.0, 0, 0, 0]])),
                                           uniform).item()
        assert loss_uniform < loss_peaked


class TestRegressionLossesAndAccuracy:
    def test_mse_zero_for_identical(self):
        x = Tensor(np.ones((3, 2)))
        assert F.mse_loss(x, np.ones((3, 2))).item() == pytest.approx(0.0)

    def test_l2_loss_rowwise(self):
        predictions = Tensor(np.zeros((2, 3)))
        targets = np.ones((2, 3))
        assert F.l2_loss(predictions, targets).item() == pytest.approx(3.0)

    def test_accuracy(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert F.accuracy(scores, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_empty(self):
        assert F.accuracy(np.zeros((0, 3)), np.array([])) == 0.0


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float64, (5, 4), elements=st.floats(-5, 5)))
def test_property_softmax_rows_are_distributions(logits):
    probs = F.softmax(Tensor(logits)).numpy()
    assert (probs >= 0).all()
    np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float64, (4, 3), elements=st.floats(-5, 5)),
       st.integers(0, 2))
def test_property_cross_entropy_nonnegative(logits, target_class):
    targets = np.full(4, target_class)
    loss = F.cross_entropy(Tensor(logits), targets).item()
    assert loss >= -1e-9
