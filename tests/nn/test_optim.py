"""Tests for optimizers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter


def quadratic_loss_step(optimizer, param, target):
    """One gradient step on 0.5 * ||param - target||^2."""
    param.grad = param.data - target
    optimizer.step()


class TestSGD:
    def test_plain_sgd_converges_on_quadratic(self):
        param = Parameter(np.array([10.0, -10.0]))
        optimizer = SGD([param], lr=0.1)
        target = np.array([1.0, 2.0])
        for _ in range(200):
            quadratic_loss_step(optimizer, param, target)
        np.testing.assert_allclose(param.data, target, atol=1e-6)

    def test_momentum_accelerates(self):
        target = np.array([1.0])

        def distance_after(momentum, steps=30):
            param = Parameter(np.array([10.0]))
            optimizer = SGD([param], lr=0.05, momentum=momentum)
            for _ in range(steps):
                quadratic_loss_step(optimizer, param, target)
            return abs(param.data[0] - target[0])

        assert distance_after(0.9) < distance_after(0.0)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(2))], lr=0.1, nesterov=True)

    def test_weight_decay_shrinks_parameters(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        param.grad = np.array([0.0])
        optimizer.step()
        assert abs(param.data[0]) < 1.0

    def test_skips_parameters_without_grad(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1)
        optimizer.step()  # no grad set: should be a no-op
        np.testing.assert_allclose(param.data, [1.0])

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_zero_grad(self):
        param = Parameter(np.array([1.0]))
        param.grad = np.array([1.0])
        SGD([param], lr=0.1).zero_grad()
        assert param.grad is None


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.array([5.0, -3.0]))
        optimizer = Adam([param], lr=0.1)
        target = np.array([-1.0, 4.0])
        for _ in range(500):
            quadratic_loss_step(optimizer, param, target)
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_first_step_size_close_to_lr(self):
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param], lr=0.01)
        param.grad = np.array([1000.0])
        optimizer.step()
        # Adam normalizes by the gradient magnitude, so the first step ~ lr.
        assert abs(param.data[0] - 1.0) == pytest.approx(0.01, rel=0.05)

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, betas=(1.0, 0.999))

    def test_set_lr(self):
        optimizer = Adam([Parameter(np.zeros(1))], lr=0.1)
        optimizer.set_lr(0.02)
        assert optimizer.lr == pytest.approx(0.02)
        with pytest.raises(ValueError):
            optimizer.set_lr(-1.0)
