"""Tests for datasets, loaders and the train/test split helper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (ArrayDataset, ConcatDataset, DataLoader, SoftLabeledDataset,
                      Subset, UnlabeledDataset, train_test_indices)


class TestDatasets:
    def test_array_dataset(self):
        dataset = ArrayDataset(np.arange(12).reshape(6, 2), np.arange(6) % 3)
        assert len(dataset) == 6
        features, label = dataset[2]
        np.testing.assert_allclose(features, [4, 5])
        assert label == 2
        np.testing.assert_array_equal(dataset.class_counts(), [2, 2, 2])

    def test_array_dataset_length_mismatch(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4))

    def test_unlabeled_dataset(self):
        dataset = UnlabeledDataset(np.ones((4, 3)))
        assert len(dataset) == 4
        np.testing.assert_allclose(dataset[0], np.ones(3))

    def test_soft_labeled_dataset_validation(self):
        with pytest.raises(ValueError):
            SoftLabeledDataset(np.zeros((3, 2)), np.zeros(3))
        dataset = SoftLabeledDataset(np.zeros((3, 2)), np.full((3, 4), 0.25))
        _, soft = dataset[1]
        assert soft.shape == (4,)

    def test_subset(self):
        dataset = ArrayDataset(np.arange(10).reshape(5, 2), np.arange(5))
        subset = Subset(dataset, [4, 0])
        assert len(subset) == 2
        assert subset[0][1] == 4
        with pytest.raises(IndexError):
            Subset(dataset, [7])

    def test_concat_dataset(self):
        a = UnlabeledDataset(np.zeros((2, 3)))
        b = UnlabeledDataset(np.ones((3, 3)))
        joined = ConcatDataset([a, b])
        assert len(joined) == 5
        np.testing.assert_allclose(joined[4], np.ones(3))
        np.testing.assert_allclose(joined[-1], np.ones(3))
        with pytest.raises(IndexError):
            joined[5]


class TestDataLoader:
    def test_batches_cover_all_examples(self):
        dataset = ArrayDataset(np.arange(20).reshape(10, 2), np.arange(10))
        loader = DataLoader(dataset, batch_size=3, shuffle=False)
        seen = []
        for batch_x, batch_y in loader:
            assert batch_x.shape[1] == 2
            seen.extend(batch_y.tolist())
        assert sorted(seen) == list(range(10))
        assert len(loader) == 4

    def test_drop_last(self):
        dataset = UnlabeledDataset(np.zeros((10, 2)))
        loader = DataLoader(dataset, batch_size=4, drop_last=True)
        assert len(loader) == 2
        assert sum(len(batch) for batch in loader) == 8

    def test_shuffle_changes_order_but_not_content(self):
        dataset = ArrayDataset(np.arange(40).reshape(20, 2), np.arange(20))
        loader = DataLoader(dataset, batch_size=20, shuffle=True,
                            rng=np.random.default_rng(0))
        (_, labels) = next(iter(loader))
        assert sorted(labels.tolist()) == list(range(20))
        assert labels.tolist() != list(range(20))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(UnlabeledDataset(np.zeros((2, 2))), batch_size=0)


class TestTrainTestIndices:
    def test_respects_per_class_counts(self):
        labels = np.repeat(np.arange(3), 10)
        train, test = train_test_indices(labels, test_per_class=2,
                                         rng=np.random.default_rng(0))
        assert len(test) == 6
        assert len(train) == 24
        assert set(train) & set(test) == set()
        for cls in range(3):
            assert (labels[test] == cls).sum() == 2

    def test_too_few_examples(self):
        labels = np.array([0, 0, 1])
        with pytest.raises(ValueError):
            train_test_indices(labels, test_per_class=2,
                               rng=np.random.default_rng(0))


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6), st.integers(5, 12), st.integers(1, 3))
def test_property_split_is_a_partition(num_classes, per_class, test_per_class):
    labels = np.repeat(np.arange(num_classes), per_class)
    train, test = train_test_indices(labels, test_per_class=test_per_class,
                                     rng=np.random.default_rng(0))
    assert len(train) + len(test) == len(labels)
    assert set(train.tolist()) | set(test.tolist()) == set(range(len(labels)))
