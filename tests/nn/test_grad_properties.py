"""Property-based gradient fuzzing for the whole ``repro.nn`` op set.

Every differentiable operation the engine exposes — tensor arithmetic,
elementwise functions, reductions, shape ops, and the functional losses in
both their fused and primitive-composed forms — is driven with seeded random
shapes (including broadcasting) and checked against central finite
differences of a pure-NumPy float64 reference.  This generalizes the
hand-written cases of ``test_fused_ops.py`` into a generic harness: each
case is a builder that returns the random inputs, the tensor-graph function
under test, and the reference function, and one shared checker does the
rest.

The graph replay executor reuses exactly these backward formulas, so this
suite is the gradient-correctness backstop for both eager and replayed
training.
"""

import contextlib

import numpy as np
import pytest

from repro.nn import Tensor, concatenate, default_dtype, stack, use_fused_ops
from repro.nn import functional as F

SEEDS = [0, 1, 2]

# float64 everywhere; a representative subset re-runs in float32 with the
# coarser probe/tolerance that its ~7 significant digits allow.
F64 = (np.float64, 1e-6, 5e-6)
F32 = (np.float32, 1e-2, 2e-3)


def finite_difference(fn, x, eps):
    """Central finite-difference gradient of scalar ``fn`` at float64 ``x``."""
    grad = np.zeros_like(x)
    flat, out = x.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x)
        flat[i] = original - eps
        lower = fn(x)
        flat[i] = original
        out[i] = (upper - lower) / (2.0 * eps)
    return grad


def check_gradients(builder, seed, dtype, eps, tol, fused=True):
    """Build a case and compare autograd against finite differences."""
    rng = np.random.default_rng(seed)
    arrays, tensor_fn, ref_fn = builder(rng)
    arrays = [np.asarray(a, dtype=np.float64) for a in arrays]
    with contextlib.ExitStack() as ctx:
        ctx.enter_context(use_fused_ops(fused))
        if dtype is not np.float64:
            ctx.enter_context(default_dtype(dtype))
        tensors = [Tensor(a.astype(dtype), requires_grad=True) for a in arrays]
        loss = tensor_fn(*tensors)
        assert loss.shape == (), f"case must reduce to a scalar, got {loss.shape}"
        loss.backward()
        # The op's output must agree with the reference forward.
        assert loss.item() == pytest.approx(ref_fn(*arrays), rel=1e-4, abs=1e-4)
        for i, (tensor, base) in enumerate(zip(tensors, arrays)):
            assert tensor.grad is not None, f"no gradient reached input {i}"

            def probe(a, i=i):
                probed = list(arrays)
                probed[i] = a
                return ref_fn(*probed)

            fd = finite_difference(probe, base.copy(), eps)
            np.testing.assert_allclose(
                tensor.grad, fd, atol=tol, rtol=tol,
                err_msg=f"input {i} of {builder.__name__} (seed {seed})")


# --------------------------------------------------------------------------- #
# Random-shape helpers
# --------------------------------------------------------------------------- #


def rand_shape(rng, max_rank=3, max_dim=4):
    rank = int(rng.integers(1, max_rank + 1))
    return tuple(int(rng.integers(1, max_dim + 1)) for _ in range(rank))


def broadcast_pair(rng):
    """A random shape plus a shape that broadcasts against it."""
    full = rand_shape(rng)
    partner = list(full)
    # Randomly collapse dimensions to 1 and/or drop leading dimensions.
    for i in range(len(partner)):
        if rng.random() < 0.4:
            partner[i] = 1
    drop = int(rng.integers(0, len(partner)))
    partner = partner[drop:] or [1]
    return full, tuple(partner)


def away_from(x, points, margin=0.05):
    """Nudge values away from non-differentiable points."""
    x = np.asarray(x, dtype=np.float64)
    for p in points:
        close = np.abs(x - p) < margin
        x = np.where(close, x + 4 * margin, x)
    return x


# --------------------------------------------------------------------------- #
# Case builders: (arrays, tensor_fn -> scalar Tensor, ref_fn -> float)
# --------------------------------------------------------------------------- #


def case_add(rng):
    sa, sb = broadcast_pair(rng)
    a, b = rng.normal(size=sa), rng.normal(size=sb)
    return ([a, b], lambda x, y: (x + y).sum(),
            lambda x, y: float((x + y).sum()))


def case_sub(rng):
    sa, sb = broadcast_pair(rng)
    a, b = rng.normal(size=sa), rng.normal(size=sb)
    return ([a, b], lambda x, y: (x - y).sum(),
            lambda x, y: float((x - y).sum()))


def case_mul(rng):
    sa, sb = broadcast_pair(rng)
    a, b = rng.normal(size=sa), rng.normal(size=sb)
    return ([a, b], lambda x, y: (x * y).sum(),
            lambda x, y: float((x * y).sum()))


def case_div(rng):
    sa, sb = broadcast_pair(rng)
    a = rng.normal(size=sa)
    b = away_from(rng.normal(size=sb), [0.0], margin=0.3)
    return ([a, b], lambda x, y: (x / y).sum(),
            lambda x, y: float((x / y).sum()))


def case_pow(rng):
    shape = rand_shape(rng)
    a = rng.uniform(0.5, 2.0, size=shape)
    exponent = float(rng.uniform(0.5, 3.0))
    return ([a], lambda x: (x ** exponent).sum(),
            lambda x: float((x ** exponent).sum()))


def case_matmul(rng):
    n, k, m = (int(rng.integers(1, 5)) for _ in range(3))
    a, b = rng.normal(size=(n, k)), rng.normal(size=(k, m))
    return ([a, b], lambda x, y: (x @ y).sum(),
            lambda x, y: float((x @ y).sum()))


def case_neg(rng):
    a = rng.normal(size=rand_shape(rng))
    return ([a], lambda x: (-x).sum(), lambda x: float((-x).sum()))


def case_exp(rng):
    a = rng.normal(size=rand_shape(rng))
    return ([a], lambda x: x.exp().sum(), lambda x: float(np.exp(x).sum()))


def case_log(rng):
    a = rng.uniform(0.3, 3.0, size=rand_shape(rng))
    return ([a], lambda x: x.log().sum(), lambda x: float(np.log(x).sum()))


def case_sqrt(rng):
    a = rng.uniform(0.3, 3.0, size=rand_shape(rng))
    return ([a], lambda x: x.sqrt().sum(), lambda x: float(np.sqrt(x).sum()))


def case_tanh(rng):
    a = rng.normal(size=rand_shape(rng))
    return ([a], lambda x: x.tanh().sum(), lambda x: float(np.tanh(x).sum()))


def case_sigmoid(rng):
    a = rng.normal(size=rand_shape(rng))
    return ([a], lambda x: x.sigmoid().sum(),
            lambda x: float((1.0 / (1.0 + np.exp(-x))).sum()))


def case_relu(rng):
    a = away_from(rng.normal(size=rand_shape(rng)), [0.0])
    return ([a], lambda x: x.relu().sum(),
            lambda x: float(np.maximum(x, 0.0).sum()))


def case_leaky_relu(rng):
    a = away_from(rng.normal(size=rand_shape(rng)), [0.0])
    return ([a], lambda x: x.leaky_relu(0.1).sum(),
            lambda x: float(np.where(x > 0, x, 0.1 * x).sum()))


def case_clip(rng):
    a = away_from(rng.normal(size=rand_shape(rng)), [-0.7, 0.7])
    return ([a], lambda x: x.clip(-0.7, 0.7).sum(),
            lambda x: float(np.clip(x, -0.7, 0.7).sum()))


def case_abs(rng):
    a = away_from(rng.normal(size=rand_shape(rng)), [0.0])
    return ([a], lambda x: x.abs().sum(), lambda x: float(np.abs(x).sum()))


def case_sum_axis(rng):
    shape = rand_shape(rng, max_rank=3)
    axis = int(rng.integers(0, len(shape)))
    keepdims = bool(rng.integers(0, 2))
    a = rng.normal(size=shape)
    weights = rng.normal(size=np.sum(a, axis=axis, keepdims=keepdims).shape)
    return ([a],
            lambda x: (x.sum(axis=axis, keepdims=keepdims)
                       * Tensor(weights.astype(x.dtype))).sum(),
            lambda x: float((np.sum(x, axis=axis, keepdims=keepdims)
                             * weights).sum()))


def case_mean(rng):
    shape = rand_shape(rng, max_rank=3)
    axis = int(rng.integers(0, len(shape)))
    a = rng.normal(size=shape)
    weights = rng.normal(size=np.mean(a, axis=axis).shape)
    return ([a],
            lambda x: (x.mean(axis=axis) * Tensor(weights.astype(x.dtype))).sum(),
            lambda x: float((np.mean(x, axis=axis) * weights).sum()))


def case_max(rng):
    # Distinct values keep the argmax unique, so the subgradient is exact.
    shape = rand_shape(rng, max_rank=2)
    size = int(np.prod(shape))
    a = (rng.permutation(size).astype(np.float64) / size
         + rng.normal(scale=0.01)).reshape(shape)
    axis = int(rng.integers(0, len(shape)))
    return ([a], lambda x: x.max(axis=axis).sum(),
            lambda x: float(np.max(x, axis=axis).sum()))


def case_reshape(rng):
    shape = rand_shape(rng, max_rank=2)
    a = rng.normal(size=shape)
    flat = int(np.prod(shape))
    weights = rng.normal(size=flat)
    return ([a],
            lambda x: (x.reshape(flat) * Tensor(weights.astype(x.dtype))).sum(),
            lambda x: float((x.reshape(flat) * weights).sum()))


def case_transpose(rng):
    a = rng.normal(size=(int(rng.integers(2, 5)), int(rng.integers(2, 5))))
    weights = rng.normal(size=a.T.shape)
    return ([a],
            lambda x: (x.T * Tensor(weights.astype(x.dtype))).sum(),
            lambda x: float((x.T * weights).sum()))


def case_getitem(rng):
    n = int(rng.integers(3, 6))
    a = rng.normal(size=(n, 3))
    idx = rng.integers(0, n, size=4)  # repeated rows accumulate
    weights = rng.normal(size=(4, 3))
    return ([a],
            lambda x: (x[idx] * Tensor(weights.astype(x.dtype))).sum(),
            lambda x: float((x[idx] * weights).sum()))


def case_stack(rng):
    shape = rand_shape(rng, max_rank=2)
    a, b = rng.normal(size=shape), rng.normal(size=shape)
    return ([a, b], lambda x, y: stack([x, y], axis=0).sum(),
            lambda x, y: float(np.stack([x, y]).sum()))


def case_concatenate(rng):
    rows_a, rows_b, cols = (int(rng.integers(1, 4)) for _ in range(3))
    a, b = rng.normal(size=(rows_a, cols)), rng.normal(size=(rows_b, cols))
    weights = rng.normal(size=(rows_a + rows_b, cols))
    return ([a, b],
            lambda x, y: (concatenate([x, y], axis=0)
                          * Tensor(weights.astype(x.dtype))).sum(),
            lambda x, y: float((np.concatenate([x, y]) * weights).sum()))


def _np_log_softmax(z):
    shifted = z - z.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def case_log_softmax(rng):
    a = rng.normal(size=(int(rng.integers(2, 5)), int(rng.integers(2, 5))))
    weights = rng.normal(size=a.shape)
    return ([a],
            lambda x: (F.log_softmax(x) * Tensor(weights.astype(x.dtype))).sum(),
            lambda x: float((_np_log_softmax(x) * weights).sum()))


def case_softmax(rng):
    a = rng.normal(size=(int(rng.integers(2, 5)), int(rng.integers(2, 5))))
    weights = rng.normal(size=a.shape)
    return ([a],
            lambda x: (F.softmax(x) * Tensor(weights.astype(x.dtype))).sum(),
            lambda x: float((np.exp(_np_log_softmax(x)) * weights).sum()))


def case_linear(rng):
    n, din, dout = (int(rng.integers(1, 5)) for _ in range(3))
    x = rng.normal(size=(n, din))
    w = rng.normal(size=(din, dout))
    b = rng.normal(size=dout)
    return ([x, w, b], lambda a, ww, bb: F.linear(a, ww, bb).sum(),
            lambda a, ww, bb: float((a @ ww + bb).sum()))


def _ce_case(rng, weighted):
    n, c = int(rng.integers(2, 6)), int(rng.integers(2, 5))
    z = rng.normal(size=(n, c))
    targets = rng.integers(0, c, size=n)
    weights = rng.uniform(0.2, 1.0, size=n) if weighted else None

    def ref(logits):
        picked = _np_log_softmax(logits)[np.arange(n), targets]
        if weights is None:
            return float(-picked.mean())
        return float(-(weights * picked).sum() / weights.sum())

    return ([z],
            lambda x: F.cross_entropy(x, targets, sample_weights=weights),
            ref)


def case_cross_entropy(rng):
    return _ce_case(rng, weighted=False)


def case_cross_entropy_weighted(rng):
    return _ce_case(rng, weighted=True)


def case_soft_cross_entropy(rng):
    n, c = int(rng.integers(2, 6)), int(rng.integers(2, 5))
    z = rng.normal(size=(n, c))
    probs = rng.dirichlet(np.ones(c), size=n)
    return ([z],
            lambda x: F.soft_cross_entropy(x, probs),
            lambda x: float(-(probs * _np_log_softmax(x)).sum() / n))


def case_nll_loss(rng):
    n, c = int(rng.integers(2, 6)), int(rng.integers(2, 5))
    a = rng.normal(size=(n, c))
    targets = rng.integers(0, c, size=n)
    return ([a],
            lambda x: F.nll_loss(F.log_softmax(x), targets),
            lambda x: float(-_np_log_softmax(x)[np.arange(n), targets].mean()))


def case_mse_loss(rng):
    shape = (int(rng.integers(1, 5)), int(rng.integers(1, 5)))
    a, t = rng.normal(size=shape), rng.normal(size=shape)
    return ([a], lambda x: F.mse_loss(x, t.astype(x.dtype)),
            lambda x: float(((x - t) ** 2).mean()))


def case_l2_loss(rng):
    shape = (int(rng.integers(1, 5)), int(rng.integers(1, 5)))
    a, t = rng.normal(size=shape), rng.normal(size=shape)
    return ([a], lambda x: F.l2_loss(x, t.astype(x.dtype)),
            lambda x: float(((x - t) ** 2).sum(axis=-1).mean()))


def _bn_forward_frozen(x, gamma, beta, mean, var, eps=1e-5):
    """The engine's BatchNorm1d forward with *fixed* statistics."""
    scale = 1.0 / np.sqrt(var + eps)
    return ((x - mean) * scale) * gamma + beta


def case_batchnorm_train(rng):
    """BatchNorm1d in training mode.

    The eager engine computes the batch statistics on raw arrays (no graph),
    so its backward treats mean/var as *constants* — the classic
    frozen-statistics BN gradient.  The reference therefore freezes the
    statistics at the base point; this is the semantic the replay kernels
    reproduce bit for bit.
    """
    from repro.nn.modules import BatchNorm1d

    n, d = int(rng.integers(2, 6)), int(rng.integers(1, 5))
    x = rng.normal(size=(n, d))
    gamma = rng.uniform(0.5, 1.5, size=d)
    beta = rng.normal(size=d)
    weights = rng.normal(size=(n, d))
    mean0, var0 = x.mean(axis=0), x.var(axis=0)

    def tensor_fn(xt, gt, bt):
        bn = BatchNorm1d(d)
        bn.gamma, bn.beta = gt, bt
        return (bn(xt) * Tensor(weights.astype(xt.dtype))).sum()

    def ref(x_, g_, b_):
        return float((_bn_forward_frozen(x_, g_, b_, mean0, var0)
                      * weights).sum())

    return ([x, gamma, beta], tensor_fn, ref)


def case_batchnorm_eval(rng):
    """BatchNorm1d in eval mode (normalization with the running stats)."""
    from repro.nn.modules import BatchNorm1d

    n, d = int(rng.integers(2, 6)), int(rng.integers(1, 5))
    x = rng.normal(size=(n, d))
    gamma = rng.uniform(0.5, 1.5, size=d)
    beta = rng.normal(size=d)
    weights = rng.normal(size=(n, d))
    running_mean = rng.normal(size=d)
    running_var = rng.uniform(0.5, 2.0, size=d)

    def tensor_fn(xt, gt, bt):
        bn = BatchNorm1d(d)
        bn.gamma, bn.beta = gt, bt
        bn.running_mean = running_mean.copy()
        bn.running_var = running_var.copy()
        bn.eval()
        return (bn(xt) * Tensor(weights.astype(xt.dtype))).sum()

    def ref(x_, g_, b_):
        return float((_bn_forward_frozen(x_, g_, b_, running_mean,
                                         running_var) * weights).sum())

    return ([x, gamma, beta], tensor_fn, ref)


def case_fanout_shared_hidden(rng):
    """Fan-out: one hidden activation consumed by two heads, losses summed.

    The gradient w.r.t. the shared activation accumulates from both
    branches — the graph fragment the DAG replay planner compiles for
    shared-encoder models.
    """
    n, din, dh, c = (int(rng.integers(2, 5)) for _ in range(4))
    x = rng.normal(size=(n, din))
    w1 = rng.normal(size=(din, dh))
    w2 = rng.normal(size=(dh, c))
    w3 = rng.normal(size=(dh, c))
    ca = rng.normal(size=(n, c))
    cb = rng.normal(size=(n, c))

    def tensor_fn(xt, w1t, w2t, w3t):
        h = (xt @ w1t).tanh()
        return ((h @ w2t) * Tensor(ca.astype(xt.dtype))).sum() \
            + ((h @ w3t) * Tensor(cb.astype(xt.dtype))).sum()

    def ref(x_, w1_, w2_, w3_):
        h = np.tanh(x_ @ w1_)
        return float(((h @ w2_) * ca).sum() + ((h @ w3_) * cb).sum())

    return ([x, w1, w2, w3], tensor_fn, ref)


def case_fanin_two_losses(rng):
    """Fan-in: a weighted sum of two different losses over a shared input
    (the FixMatch-shaped supervised + consistency combination)."""
    n, din, c = int(rng.integers(2, 6)), int(rng.integers(2, 5)), \
        int(rng.integers(2, 5))
    x = rng.normal(size=(n, din))
    w1 = rng.normal(size=(din, c))
    w2 = rng.normal(size=(din, c))
    targets = rng.integers(0, c, size=n)
    reg_targets = rng.normal(size=(n, c))

    def tensor_fn(xt, w1t, w2t):
        ce = F.cross_entropy(xt @ w1t, targets)
        reg = F.l2_loss(xt @ w2t, reg_targets.astype(xt.dtype))
        return ce + reg * 0.5

    def ref(x_, w1_, w2_):
        picked = _np_log_softmax(x_ @ w1_)[np.arange(n), targets]
        reg = ((x_ @ w2_ - reg_targets) ** 2).sum(axis=-1).mean()
        return float(-picked.mean() + 0.5 * reg)

    return ([x, w1, w2], tensor_fn, ref)


def case_reused_tensor(rng):
    """The same tensor appearing twice in one expression (x*x + x)."""
    shape = rand_shape(rng)
    x = rng.normal(size=shape)
    weights = rng.normal(size=shape)

    def tensor_fn(xt):
        return ((xt * xt + xt) * Tensor(weights.astype(xt.dtype))).sum()

    def ref(x_):
        return float(((x_ * x_ + x_) * weights).sum())

    return ([x], tensor_fn, ref)


ALL_CASES = [
    case_add, case_sub, case_mul, case_div, case_pow, case_matmul,
    case_neg, case_exp, case_log, case_sqrt, case_tanh, case_sigmoid,
    case_relu, case_leaky_relu, case_clip, case_abs,
    case_sum_axis, case_mean, case_max,
    case_reshape, case_transpose, case_getitem, case_stack,
    case_concatenate,
    case_log_softmax, case_softmax, case_linear,
    case_cross_entropy, case_cross_entropy_weighted,
    case_soft_cross_entropy, case_nll_loss, case_mse_loss, case_l2_loss,
    case_batchnorm_train, case_batchnorm_eval,
    case_fanout_shared_hidden, case_fanin_two_losses, case_reused_tensor,
]

#: ops with both fused kernels and primitive-composed reference paths
FUSED_CASES = [case_linear, case_cross_entropy, case_cross_entropy_weighted,
               case_soft_cross_entropy, case_mse_loss, case_l2_loss]

#: representative subset re-checked in float32
F32_CASES = [case_matmul, case_linear, case_cross_entropy,
             case_soft_cross_entropy, case_l2_loss, case_relu, case_tanh,
             case_sigmoid, case_batchnorm_train, case_fanin_two_losses]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("builder", ALL_CASES, ids=lambda b: b.__name__)
def test_gradients_float64(builder, seed):
    dtype, eps, tol = F64
    check_gradients(builder, seed, dtype, eps, tol)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("builder", FUSED_CASES, ids=lambda b: b.__name__)
def test_gradients_float64_unfused_reference(builder, seed):
    dtype, eps, tol = F64
    check_gradients(builder, seed, dtype, eps, tol, fused=False)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("builder", F32_CASES, ids=lambda b: b.__name__)
def test_gradients_float32(builder, seed):
    dtype, eps, tol = F32
    check_gradients(builder, seed, dtype, eps, tol)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("builder", FUSED_CASES, ids=lambda b: b.__name__)
def test_fused_matches_unfused_bitwise_inputs(builder, seed):
    """Fused and primitive-composed paths agree tightly on the same inputs."""
    rng = np.random.default_rng(seed)
    arrays, tensor_fn, _ = builder(rng)
    arrays = [np.asarray(a, dtype=np.float64) for a in arrays]

    def grads(fused):
        with use_fused_ops(fused):
            tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
            loss = tensor_fn(*tensors)
            loss.backward()
            return loss.item(), [t.grad.copy() for t in tensors]

    loss_fused, grads_fused = grads(True)
    loss_ref, grads_ref = grads(False)
    assert loss_fused == pytest.approx(loss_ref, rel=1e-12, abs=1e-12)
    for gf, gr in zip(grads_fused, grads_ref):
        np.testing.assert_allclose(gf, gr, atol=1e-12, rtol=1e-12)
