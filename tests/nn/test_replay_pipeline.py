"""Zero-fallback regression tests for the pipeline's training loops.

Before the DAG tracer, unsupported graph shapes (BatchNorm backbones,
FixMatch's two-view step) fell back to eager *silently* — the loop trained
correctly but forfeited the replay speedup, and nothing failed.  These tests
turn that into a caught regression: every static training loop in the
pipeline runs with a :class:`~repro.nn.ReplayStats` counter attached and
must report **zero eager fallbacks** — one capture per signature, replays
for everything else.
"""

import numpy as np
import pytest

from repro.nn import (MLP, Adam, GraphReplay, ReplayStats, TrainConfig,
                      collect_replay_stats, train_classifier,
                      train_soft_classifier)
from repro.nn.modules import Linear, Module, ReLU


def _assert_no_fallbacks(stats: ReplayStats):
    assert stats.fallbacks == {}, stats.fallbacks
    assert stats.fallback_count == 0
    assert stats.eager_steps == 0
    assert stats.captures > 0
    assert stats.replays > 0


class TestTrainingLoops:
    def test_train_classifier_batch_norm_dropout_zero_fallbacks(self):
        stats = ReplayStats()
        rng = np.random.default_rng(0)
        features = rng.normal(size=(150, 16))
        labels = rng.integers(0, 5, size=150)
        config = TrainConfig(epochs=4, batch_size=32, lr=0.05, momentum=0.9,
                             seed=0, replay=True, replay_stats=stats)
        model = MLP(16, [32, 24], 5, batch_norm=True, dropout=0.2,
                    rng=np.random.default_rng(1))
        train_classifier(model, features, labels, config)
        _assert_no_fallbacks(stats)

    def test_train_soft_classifier_zero_fallbacks(self):
        stats = ReplayStats()
        rng = np.random.default_rng(2)
        features = rng.normal(size=(120, 12))
        probs = rng.dirichlet(np.ones(4), size=120)
        config = TrainConfig(epochs=4, batch_size=32, lr=3e-3,
                             optimizer="adam", seed=0, replay=True,
                             replay_stats=stats)
        model = MLP(12, [24], 4, rng=np.random.default_rng(3))
        train_soft_classifier(model, features, probs, config)
        _assert_no_fallbacks(stats)

    def test_zsl_kg_pretrain_loop_zero_fallbacks(self):
        # The ZSL-KG pretrain shape: full-batch L2 + Adam with a per-epoch
        # compiled validation pass, stepped exactly as zsl_kg._pretrain does.
        class _ClassEncoder(Module):
            def __init__(self, rng):
                super().__init__()
                self.fc1 = Linear(24, 32, rng=rng)
                self.activation = ReLU()
                self.fc2 = Linear(32, 16, rng=rng)

            def forward(self, x):
                return self.fc2(self.activation(self.fc1(x)))

        stats = ReplayStats()
        rng = np.random.default_rng(4)
        train_x = rng.normal(size=(30, 24))
        train_y = rng.normal(size=(30, 16))
        val_x = rng.normal(size=(5, 24))
        val_y = rng.normal(size=(5, 16))
        encoder = _ClassEncoder(np.random.default_rng(5))
        optimizer = Adam(encoder.parameters(), lr=1e-2)
        stepper = GraphReplay(encoder, optimizer, loss="l2", enabled=True,
                              stats=stats)
        for _ in range(20):
            encoder.train()
            stepper.step(train_x, train_y, compute_loss=False)
            encoder.eval()
            stepper.eval_loss(val_x, val_y)
        _assert_no_fallbacks(stats)
        assert stats.captures == 2  # one train plan + one eval plan


class TestSharedCounter:
    def test_counter_registered_twice_ticks_once_per_step(self):
        # The same ReplayStats arriving both ambiently (collect_replay_stats)
        # and explicitly (TrainConfig.replay_stats) must count each step
        # exactly once.
        stats = ReplayStats()
        rng = np.random.default_rng(7)
        features = rng.normal(size=(64, 8))
        labels = rng.integers(0, 4, size=64)
        config = TrainConfig(epochs=3, batch_size=32, seed=0, replay=True,
                             replay_stats=stats)
        model = MLP(8, [16], 4, rng=np.random.default_rng(8))
        with collect_replay_stats(stats):
            train_classifier(model, features, labels, config)
        assert stats.total == 3 * 2  # 6 steps: 1 capture + 5 replays
        assert stats.captures == 1
        assert stats.replays == 5


class TestFixMatchTwoView:
    def test_fixmatch_module_zero_fallbacks(self):
        # The full module — auxiliary fine-tuning, head warm-up, and the
        # two-view consistency loop (pseudo-label forward + compiled
        # two-view step) — must never silently fall back to eager.
        from repro.backbones.backbone import (BackboneSpec, Encoder,
                                              PretrainedBackbone)
        from repro.datasets.base import ClassSpec
        from repro.modules.base import ModuleInput
        from repro.modules.fixmatch import FixMatchConfig, FixMatchModule
        from repro.scads.query import AuxiliarySelection

        rng = np.random.default_rng(6)
        spec = BackboneSpec("t", input_dim=12, hidden_dims=(16,),
                            feature_dim=8)
        backbone = PretrainedBackbone(
            spec, Encoder(spec, rng=rng).state_dict())
        classes = [ClassSpec(name=f"c{i}", concept=f"c{i}") for i in range(4)]
        aux = AuxiliarySelection(features=rng.normal(size=(40, 12)),
                                 labels=rng.integers(0, 3, size=40),
                                 concepts=["a", "b", "c"])
        data = ModuleInput(classes=classes,
                           labeled_features=rng.normal(size=(20, 12)),
                           labeled_labels=rng.integers(0, 4, size=20),
                           unlabeled_features=rng.normal(size=(64, 12)),
                           auxiliary=aux, backbone=backbone, seed=0)
        stats = ReplayStats()
        config = FixMatchConfig(aux_epochs=2, head_warmup_epochs=2, epochs=3,
                                confidence_threshold=0.5, replay=True)
        with collect_replay_stats(stats):
            FixMatchModule(config).train(data)
        _assert_no_fallbacks(stats)


class TestScenarioLoops:
    # The scenario grid stresses the pipeline with regime shapes the plain
    # FMD split never produces — ragged per-class label counts, corrupted
    # pools, per-stage retraining over growing class sets.  Every one of
    # those training loops must still replay with zero eager fallbacks.
    @pytest.mark.parametrize("name", ["fmd_5shot_imbalanced",
                                      "cifar_5shot_mixing_s2"])
    def test_single_stage_scenario_zero_fallbacks(self, name, tiny_workspace):
        from repro.scenarios import ScenarioRunner, get_scenario

        stats = ReplayStats()
        runner = ScenarioRunner(tiny_workspace)
        row = runner.run_cell(get_scenario(name), method="taglets", seed=0,
                              replay_stats=stats)
        _assert_no_fallbacks(stats)
        assert row.fallbacks == 0

    def test_multi_stage_scenario_zero_fallbacks(self, tiny_workspace):
        # Incremental stages retrain from scratch on different class counts
        # — new graph signatures per stage, but still never an eager step.
        from repro.scenarios import ScenarioRunner, get_scenario

        stats = ReplayStats()
        runner = ScenarioRunner(tiny_workspace)
        row = runner.run_cell(get_scenario("cifar_incremental_2phase"),
                              method="taglets", seed=0, replay_stats=stats)
        _assert_no_fallbacks(stats)
        assert row.fallbacks == 0


class TestControllerRun:
    def test_full_pipeline_zero_fallbacks(self, tiny_workspace, tiny_backbone):
        # Every training loop in a full TAGLETS run — all four paper-default
        # modules plus the end-model distillation — reports into one shared
        # counter via ControllerConfig.replay_stats, and none may fall back.
        from repro.core import Controller, ControllerConfig, Task

        split = tiny_workspace.make_task_split("fmd", shots=5, split_seed=0)
        task = Task.from_split(split, scads=tiny_workspace.scads,
                               backbone=tiny_backbone,
                               wanted_num_related_class=3,
                               images_per_related_class=8)
        stats = ReplayStats()
        config = ControllerConfig(replay=True, replay_stats=stats, seed=0)
        Controller(config=config).run(task)
        _assert_no_fallbacks(stats)
