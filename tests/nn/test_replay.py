"""Replay-vs-eager equivalence tests for the graph replay executor.

The whole-graph capture/replay executor (:mod:`repro.nn.replay`) promises
that replayed training is *bit-identical* to the fused eager path: for every
model/loss/optimizer combination used in the pipeline we train twice — once
with replay forced on, once forced off — and require exactly equal
parameters after N steps, in both float64 and float32.  The
``seed_compat_mode`` primitive-composed reference must agree to numerical
tolerance (its arithmetic order differs, so bitwise equality is not
expected there).
"""

import contextlib

import numpy as np
import pytest

from repro.nn import (MLP, Adam, GraphReplay, TrainConfig, default_dtype,
                      seed_compat_mode, train_classifier,
                      train_soft_classifier)
from repro.nn.modules import Dropout, Linear, Module, ReLU

DTYPES = [
    pytest.param(np.float64, 1e-8, id="float64"),
    pytest.param(np.float32, 1e-3, id="float32"),
]


def _dtype_scope(dtype):
    return default_dtype(dtype) if dtype is not np.float64 else contextlib.nullcontext()


def _params(model):
    return [p.data.copy() for p in model.parameters()]


def _assert_bit_identical(got, expected):
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert g.dtype == e.dtype
        np.testing.assert_array_equal(g, e)


class TestHardCrossEntropySGD:
    """The transfer/multitask/fixmatch-supervised loop shape."""

    def _train(self, dtype, replay, compat=False):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(150, 24))
        labels = rng.integers(0, 7, size=150)
        config = TrainConfig(epochs=4, batch_size=32, lr=0.05, momentum=0.9,
                             nesterov=True, weight_decay=1e-4,
                             scheduler="multistep", milestones=(2,),
                             seed=0, replay=replay)
        with contextlib.ExitStack() as stack:
            if compat:
                stack.enter_context(seed_compat_mode())
            stack.enter_context(_dtype_scope(dtype))
            model = MLP(24, [48, 32], 7, rng=np.random.default_rng(1))
            train_classifier(model, features, labels, config)
            return _params(model)

    @pytest.mark.parametrize("dtype,tol", DTYPES)
    def test_replay_bit_identical_to_eager(self, dtype, tol):
        _assert_bit_identical(self._train(dtype, replay=True),
                              self._train(dtype, replay=False))

    @pytest.mark.parametrize("dtype,tol", DTYPES)
    def test_replay_matches_seed_compat_reference(self, dtype, tol):
        replayed = self._train(dtype, replay=True)
        reference = self._train(dtype, replay=None, compat=True)
        for got, ref in zip(replayed, reference):
            np.testing.assert_allclose(got, ref, atol=tol, rtol=tol)


class TestSoftCrossEntropyAdam:
    """The end-model distillation loop shape (soft targets + Adam + decay)."""

    def _train(self, dtype, replay):
        rng = np.random.default_rng(2)
        features = rng.normal(size=(120, 16))
        probs = rng.dirichlet(np.ones(5), size=120)
        config = TrainConfig(epochs=4, batch_size=32, lr=3e-3,
                             optimizer="adam", weight_decay=1e-4,
                             scheduler="multistep", milestones=(2,),
                             seed=0, replay=replay)
        with _dtype_scope(dtype):
            model = MLP(16, [32], 5, rng=np.random.default_rng(3))
            train_soft_classifier(model, features, probs, config)
            return _params(model)

    @pytest.mark.parametrize("dtype,tol", DTYPES)
    def test_replay_bit_identical_to_eager(self, dtype, tol):
        _assert_bit_identical(self._train(dtype, replay=True),
                              self._train(dtype, replay=False))


class _ClassEncoder(Module):
    """The ZSL-KG GraphClassEncoder architecture (custom forward chain)."""

    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(48, 64, rng=rng)
        self.activation = ReLU()
        self.fc2 = Linear(64, 32, rng=rng)

    def forward(self, x):
        return self.fc2(self.activation(self.fc1(x)))


class TestL2AdamPretrainLoop:
    """The ZSL-KG pretrain loop: full-batch L2 regression + per-epoch eval."""

    def _train(self, dtype, replay, epochs=40):
        with _dtype_scope(dtype):
            dt = np.float32 if dtype is np.float32 else np.float64
            rng = np.random.default_rng(4)
            train_x = rng.normal(size=(30, 48)).astype(dt)
            train_y = rng.normal(size=(30, 32)).astype(dt)
            val_x = rng.normal(size=(4, 48)).astype(dt)
            val_y = rng.normal(size=(4, 32)).astype(dt)
            encoder = _ClassEncoder(np.random.default_rng(5))
            optimizer = Adam(encoder.parameters(), lr=1e-2)
            stepper = GraphReplay(encoder, optimizer, loss="l2",
                                  enabled=replay)
            val_losses = []
            for _ in range(epochs):
                encoder.train()
                stepper.step(train_x, train_y, compute_loss=False)
                encoder.eval()
                val_losses.append(stepper.eval_loss(val_x, val_y))
            return _params(encoder), val_losses, stepper.stats

    @pytest.mark.parametrize("dtype,tol", DTYPES)
    def test_replay_bit_identical_to_eager(self, dtype, tol):
        replay_params, replay_vals, stats = self._train(dtype, replay=True)
        eager_params, eager_vals, _ = self._train(dtype, replay=False)
        _assert_bit_identical(replay_params, eager_params)
        assert replay_vals == eager_vals  # eval losses bitwise equal too
        # The loop must actually have replayed (1 train + 1 eval capture).
        assert stats.captures == 2
        assert stats.replays == 2 * 40 - 2


class TestDropoutRNGAlignment:
    """Replayed dropout draws from the layer RNG exactly as eager does."""

    def _train(self, replay):
        rng = np.random.default_rng(6)
        features = rng.normal(size=(96, 12))
        labels = rng.integers(0, 4, size=96)
        config = TrainConfig(epochs=3, batch_size=32, lr=0.05, momentum=0.9,
                             seed=0, replay=replay)
        model = MLP(12, [24], 4, dropout=0.3, rng=np.random.default_rng(7))
        train_classifier(model, features, labels, config)
        return _params(model)

    def test_replay_bit_identical_to_eager(self):
        _assert_bit_identical(self._train(True), self._train(False))


class TestUnevenBatches:
    """The last smaller batch compiles its own plan; results stay exact."""

    def _train(self, replay):
        rng = np.random.default_rng(8)
        features = rng.normal(size=(70, 10))
        labels = rng.integers(0, 3, size=70)
        config = TrainConfig(epochs=3, batch_size=32, seed=0, replay=replay)
        model = MLP(10, [16], 3, rng=np.random.default_rng(9))
        train_classifier(model, features, labels, config)
        return _params(model)

    def test_replay_bit_identical_to_eager(self):
        _assert_bit_identical(self._train(True), self._train(False))


class TestAugmentedLoop:
    """Augmentation runs outside the compiled step; RNG streams stay aligned."""

    def _train(self, replay):
        from repro.nn import weak_augment

        rng = np.random.default_rng(10)
        features = rng.normal(size=(80, 8))
        labels = rng.integers(0, 4, size=80)
        config = TrainConfig(epochs=3, batch_size=32, seed=0,
                             augment=weak_augment(), replay=replay)
        model = MLP(8, [16], 4, rng=np.random.default_rng(11))
        train_classifier(model, features, labels, config)
        return _params(model)

    def test_replay_bit_identical_to_eager(self):
        _assert_bit_identical(self._train(True), self._train(False))


class TestReplayActuallyReplays:
    """Sanity: the default-on path compiles once and replays the rest."""

    def test_stats_show_replays(self):
        rng = np.random.default_rng(12)
        features = rng.normal(size=(64, 6)).astype(np.float64)
        labels = rng.integers(0, 3, size=64)
        from repro.nn import SGD

        model = MLP(6, [12], 3, rng=np.random.default_rng(13))
        optimizer = SGD(model.parameters(), lr=0.1)
        stepper = GraphReplay(model, optimizer, loss="cross_entropy")
        for _ in range(10):
            stepper.step(features, labels)
        assert stepper.stats.captures == 1
        assert stepper.stats.replays == 9
        assert stepper.stats.eager_steps == 0
