"""Guard-rail tests for the replay executor's fallback paths.

An aggressive capture/replay engine is only safe if every way the traced
assumptions can break is detected *on the step where it happens*: batch
shape or dtype changes, model structure mutations mid-loop, unsupported
layers, frozen parameters, and engine-mode switches.  Each test mutates a
loop mid-flight and asserts (a) the executor noticed — via its stats — and
(b) the results are exactly what the pure eager engine produces, i.e. no
silent stale-buffer reuse.
"""

import numpy as np
import pytest

from repro.nn import (GraphReplay, SGD, Tensor, seed_compat_mode,
                      use_graph_replay)
from repro.nn.modules import (BatchNorm1d, Linear, Module, ReLU, Sequential)


def _make_model(seed=0, din=8, hidden=16, dout=4):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(din, hidden, rng=rng), ReLU(),
                      Linear(hidden, dout, rng=rng))


def _params(model):
    return [p.data.copy() for p in model.parameters()]


def _batches(seed=1, n=32, din=8, classes=4, dtype=np.float64):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, din)).astype(dtype)
    y = rng.integers(0, classes, size=n)
    return x, y


def _run_script(script, replay):
    """Run a list of (model_mutator_or_None, x, y) steps; return params."""
    model = _make_model()
    optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
    stepper = GraphReplay(model, optimizer, loss="cross_entropy",
                          enabled=replay)
    for mutate, x, y in script:
        if mutate is not None:
            mutate(model, optimizer)
        stepper.step(x, y)
    return _params(model), stepper.stats


class TestBatchShapeChange:
    def test_new_shape_gets_its_own_plan_and_results_match_eager(self):
        x1, y1 = _batches(1, n=32)
        x2, y2 = _batches(2, n=20)  # different batch size mid-loop
        script = [(None, x1, y1)] * 3 + [(None, x2, y2)] * 2 + [(None, x1, y1)]
        replay_params, stats = _run_script(script, replay=True)
        eager_params, _ = _run_script(script, replay=False)
        for a, b in zip(replay_params, eager_params):
            np.testing.assert_array_equal(a, b)
        # One capture per shape; every other step replayed, none eager.
        assert stats.captures == 2
        assert stats.replays == 4
        assert stats.eager_steps == 0


class TestDtypeSwap:
    def test_dtype_change_recaptures_and_matches_eager(self):
        x64, y = _batches(3, dtype=np.float64)
        x32 = x64.astype(np.float32)
        script = [(None, x64, y)] * 2 + [(None, x32, y)] * 2 + [(None, x64, y)]
        replay_params, stats = _run_script(script, replay=True)
        eager_params, _ = _run_script(script, replay=False)
        for a, b in zip(replay_params, eager_params):
            np.testing.assert_array_equal(a, b)
        # float32 input is cast to the (float64) parameter dtype exactly as
        # the eager Tensor constructor does, under a separate signature.
        assert stats.captures == 2
        assert stats.replays == 3


class TestModelMutationMidLoop:
    def test_appended_layer_is_detected_and_trained_correctly(self):
        x, y = _batches(4)

        def add_layer(model, optimizer):
            # A parameter-free layer changes the graph without changing the
            # optimizer's parameter list.
            model.append(ReLU())

        script = ([(None, x, y)] * 3 + [(add_layer, x, y)]
                  + [(None, x, y)] * 2)
        replay_params, stats = _run_script(script, replay=True)
        eager_params, _ = _run_script(script, replay=False)
        for a, b in zip(replay_params, eager_params):
            np.testing.assert_array_equal(a, b)
        # The structural change forces a second capture; no stale plan runs.
        assert stats.captures == 2
        assert stats.replays == 4

    def test_swapped_head_is_detected(self):
        x, y = _batches(5)

        def swap_head(model, optimizer):
            model.layers[-1] = Linear(16, 4, rng=np.random.default_rng(42))

        script = [(None, x, y)] * 2 + [(swap_head, x, y)] + [(None, x, y)]
        replay_params, stats = _run_script(script, replay=True)
        eager_params, _ = _run_script(script, replay=False)
        for a, b in zip(replay_params, eager_params):
            np.testing.assert_array_equal(a, b)
        assert stats.captures == 2

    def test_freezing_a_parameter_mid_loop_is_detected(self):
        x, y = _batches(6)

        def freeze(model, optimizer):
            model.layers[0].weight.requires_grad = False

        script = [(None, x, y)] * 2 + [(freeze, x, y)] + [(None, x, y)] * 2
        replay_params, stats = _run_script(script, replay=True)
        eager_params, _ = _run_script(script, replay=False)
        for a, b in zip(replay_params, eager_params):
            np.testing.assert_array_equal(a, b)
        assert stats.captures == 2


class TestUnsupportedStructures:
    def test_batchnorm_model_compiles_and_replays(self):
        # PR 2's tracer marked BatchNorm1d unsupported; the DAG compiler
        # replays it (the bit-identity is asserted by test_replay_dag.py —
        # here we pin that the old silent fallback is gone).
        rng = np.random.default_rng(7)
        model = Sequential(Linear(8, 16, rng=rng), BatchNorm1d(16), ReLU(),
                           Linear(16, 4, rng=rng))
        optimizer = SGD(model.parameters(), lr=0.1)
        stepper = GraphReplay(model, optimizer, loss="cross_entropy")
        x, y = _batches(8)
        for _ in range(4):
            stepper.step(x, y)
        assert stepper.stats.captures == 1
        assert stepper.stats.replays == 3
        assert stepper.stats.eager_steps == 0

    def test_shared_layer_replays_with_grad_accumulation(self):
        # A layer applied twice accumulates its parameter gradient; the DAG
        # plan writes the first contribution and adds the second in eager
        # backward order, so results stay exactly eager.
        class Siamese(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(8, 8, rng=np.random.default_rng(30))
                self.head = Linear(8, 4, rng=np.random.default_rng(31))

            def forward(self, x):
                return self.head(self.lin(self.lin(x)))

        x, y = _batches(32)

        def run(replay):
            model = Siamese()
            optimizer = SGD(model.parameters(), lr=0.1)
            stepper = GraphReplay(model, optimizer, loss="cross_entropy",
                                  enabled=replay)
            for _ in range(4):
                stepper.step(x, y)
            return _params(model), stepper.stats

        replay_params, stats = run(True)
        eager_params, _ = run(False)
        assert stats.captures == 1
        assert stats.replays == 3
        assert stats.eager_steps == 0
        for a, b in zip(replay_params, eager_params):
            np.testing.assert_array_equal(a, b)

    def test_custom_tensor_math_in_forward_falls_back(self):
        class Scaled(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(8, 4, rng=np.random.default_rng(9))

            def forward(self, x):
                return self.lin(x) * 2.0  # op outside the traced leaf chain

        model = Scaled()
        optimizer = SGD(model.parameters(), lr=0.1)
        stepper = GraphReplay(model, optimizer, loss="cross_entropy")
        x, y = _batches(10)
        for _ in range(3):
            stepper.step(x, y)
        assert stepper.stats.replays == 0
        assert stepper.stats.eager_steps == 3

    def test_batchnorm_model_trains_identically_to_eager(self):
        def build():
            model = Sequential(Linear(8, 16, rng=np.random.default_rng(11)),
                               BatchNorm1d(16), ReLU(),
                               Linear(16, 4, rng=np.random.default_rng(12)))
            return model

        x, y = _batches(13)

        def run(replay):
            model = build()
            optimizer = SGD(model.parameters(), lr=0.1)
            stepper = GraphReplay(model, optimizer, loss="cross_entropy",
                                  enabled=replay)
            for _ in range(5):
                stepper.step(x, y)
            return _params(model)

        for a, b in zip(run(True), run(False)):
            np.testing.assert_array_equal(a, b)


class TestEngineModeSwitches:
    def test_use_graph_replay_false_disables_replay(self):
        model = _make_model()
        optimizer = SGD(model.parameters(), lr=0.1)
        stepper = GraphReplay(model, optimizer, loss="cross_entropy")
        x, y = _batches(14)
        with use_graph_replay(False):
            for _ in range(3):
                stepper.step(x, y)
        assert stepper.stats.replays == 0
        assert stepper.stats.eager_steps == 3
        # Back on: captures and replays resume.
        stepper.step(x, y)
        stepper.step(x, y)
        assert stepper.stats.captures == 1
        assert stepper.stats.replays == 1

    def test_enabled_true_overrides_ambient_off(self):
        # Tri-state force-on: enabled=True (TrainConfig/ControllerConfig
        # replay=True) wins over an ambient use_graph_replay(False).
        model = _make_model()
        optimizer = SGD(model.parameters(), lr=0.1)
        stepper = GraphReplay(model, optimizer, loss="cross_entropy",
                              enabled=True)
        x, y = _batches(28)
        with use_graph_replay(False):
            stepper.step(x, y)
            stepper.step(x, y)
        assert stepper.stats.captures == 1
        assert stepper.stats.replays == 1

    def test_seed_compat_mode_disables_replay(self):
        model = _make_model()
        optimizer = SGD(model.parameters(), lr=0.1)
        stepper = GraphReplay(model, optimizer, loss="cross_entropy")
        x, y = _batches(15)
        with seed_compat_mode():
            stepper.step(x, y)
        assert stepper.stats.replays == 0
        assert stepper.stats.eager_steps == 1


class TestFrozenParameters:
    def test_head_only_training_matches_eager(self):
        x, y = _batches(16)

        def run(replay):
            model = _make_model(seed=17)
            for p in model.layers[0].parameters():
                p.requires_grad = False
            optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
            stepper = GraphReplay(model, optimizer, loss="cross_entropy",
                                  enabled=replay)
            for _ in range(5):
                stepper.step(x, y)
            return _params(model), stepper.stats

        replay_params, stats = run(True)
        eager_params, _ = run(False)
        for a, b in zip(replay_params, eager_params):
            np.testing.assert_array_equal(a, b)
        assert stats.replays == 4  # frozen layers replay fine

    def test_frozen_first_layer_weights_do_not_move(self):
        model = _make_model(seed=18)
        frozen = model.layers[0].weight
        frozen.requires_grad = False
        before = frozen.data.copy()
        optimizer = SGD(model.parameters(), lr=0.5)
        stepper = GraphReplay(model, optimizer, loss="cross_entropy")
        x, y = _batches(19)
        for _ in range(4):
            stepper.step(x, y)
        np.testing.assert_array_equal(frozen.data, before)


class TestErrorBehavior:
    def test_out_of_range_labels_raise_in_replayed_step(self):
        model = _make_model(seed=20)
        optimizer = SGD(model.parameters(), lr=0.1)
        stepper = GraphReplay(model, optimizer, loss="cross_entropy")
        x, y = _batches(21)
        stepper.step(x, y)
        stepper.step(x, y)
        assert stepper.stats.replays == 1
        bad = y.copy()
        bad[0] = 99
        with pytest.raises(ValueError, match="labels out of range"):
            stepper.step(x, bad)

    def test_soft_target_shape_mismatch_raises(self):
        model = _make_model(seed=22)
        optimizer = SGD(model.parameters(), lr=0.1)
        stepper = GraphReplay(model, optimizer, loss="soft_cross_entropy")
        x, _ = _batches(23)
        probs = np.full((32, 4), 0.25)
        stepper.step(x, probs)
        with pytest.raises(ValueError):
            stepper.step(x, np.full((32, 5), 0.2))


class TestEvalGuards:
    def test_eval_plan_detects_model_mutation(self):
        model = _make_model(seed=24)
        optimizer = SGD(model.parameters(), lr=0.1)
        stepper = GraphReplay(model, optimizer, loss="cross_entropy")
        x, y = _batches(25)
        first = stepper.eval_loss(x, y)
        again = stepper.eval_loss(x, y)
        assert first == again  # weights unchanged -> identical loss
        model.append(ReLU())
        mutated = stepper.eval_loss(x, y)  # recaptured, not stale
        with use_graph_replay(False):
            reference = stepper.eval_loss(x, y)
        assert mutated == reference

    def test_eval_loss_matches_eager_inference(self):
        from repro.nn import functional as F
        from repro.nn.tensor import inference_mode

        model = _make_model(seed=26)
        optimizer = SGD(model.parameters(), lr=0.1)
        stepper = GraphReplay(model, optimizer, loss="cross_entropy")
        x, y = _batches(27)
        compiled = [stepper.eval_loss(x, y) for _ in range(3)]
        with inference_mode():
            eager = F.cross_entropy(model(Tensor(x)), y).item()
        assert compiled == [eager] * 3
