"""Tests for neural-network layers and the Module machinery."""

import numpy as np
import pytest

from repro.nn import (MLP, BatchNorm1d, Dropout, Identity, Linear, Module,
                      Parameter, ReLU, Sequential, Tanh, Tensor)


class TestLinear:
    def test_forward_shape_and_value(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        layer.weight.data = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        layer.bias.data = np.array([0.5, -0.5])
        out = layer(Tensor(np.array([[1.0, 2.0, 3.0]])))
        np.testing.assert_allclose(out.numpy(), [[4.5, 4.5]])

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 2)


class TestActivationsAndDropout:
    def test_relu_tanh_identity(self):
        x = Tensor(np.array([[-1.0, 2.0]]))
        np.testing.assert_allclose(ReLU()(x).numpy(), [[0.0, 2.0]])
        np.testing.assert_allclose(Tanh()(x).numpy(), np.tanh([[-1.0, 2.0]]))
        np.testing.assert_allclose(Identity()(x).numpy(), [[-1.0, 2.0]])

    def test_dropout_off_in_eval(self):
        dropout = Dropout(0.9, rng=np.random.default_rng(0))
        dropout.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(dropout(x).numpy(), np.ones((4, 4)))

    def test_dropout_scales_in_train(self):
        dropout = Dropout(0.5, rng=np.random.default_rng(0))
        dropout.train()
        out = dropout(Tensor(np.ones((1000, 1)))).numpy()
        # Surviving activations are scaled by 1/keep, so the mean stays ~1.
        assert out.mean() == pytest.approx(1.0, abs=0.15)

    def test_dropout_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestBatchNorm:
    def test_normalizes_in_train_mode(self):
        bn = BatchNorm1d(3)
        x = np.random.default_rng(0).normal(5.0, 3.0, size=(200, 3))
        out = bn(Tensor(x)).numpy()
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(3), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), np.ones(3), atol=1e-2)

    def test_running_stats_used_in_eval(self):
        bn = BatchNorm1d(2, momentum=1.0)
        x = np.random.default_rng(1).normal(2.0, 1.0, size=(50, 2))
        bn(Tensor(x))
        bn.eval()
        out = bn(Tensor(x)).numpy()
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(2), atol=0.1)

    def test_shape_check(self):
        with pytest.raises(ValueError):
            BatchNorm1d(3)(Tensor(np.ones((2, 4))))


class TestSequentialAndMLP:
    def test_sequential_order_and_indexing(self):
        model = Sequential(Linear(2, 3), ReLU(), Linear(3, 1))
        assert len(model) == 3
        assert isinstance(model[1], ReLU)
        out = model(Tensor(np.ones((4, 2))))
        assert out.shape == (4, 1)

    def test_mlp_parameter_count(self):
        model = MLP(10, [20], 5, rng=np.random.default_rng(0))
        expected = 10 * 20 + 20 + 20 * 5 + 5
        assert model.num_parameters() == expected

    def test_mlp_with_batchnorm_and_dropout(self):
        model = MLP(8, [16, 16], 3, dropout=0.2, batch_norm=True,
                    rng=np.random.default_rng(0))
        out = model(Tensor(np.random.default_rng(0).normal(size=(12, 8))))
        assert out.shape == (12, 3)


class TestModuleMachinery:
    def test_named_parameters_are_unique(self):
        model = MLP(4, [8, 8], 2)
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == len(set(names))

    def test_state_dict_roundtrip(self):
        source = MLP(6, [12], 3, rng=np.random.default_rng(0))
        target = MLP(6, [12], 3, rng=np.random.default_rng(1))
        target.load_state_dict(source.state_dict())
        x = Tensor(np.random.default_rng(2).normal(size=(5, 6)))
        np.testing.assert_allclose(source(x).numpy(), target(x).numpy())

    def test_state_dict_shape_mismatch(self):
        source = MLP(6, [12], 3)
        target = MLP(6, [10], 3)
        with pytest.raises((ValueError, KeyError)):
            target.load_state_dict(source.state_dict())

    def test_state_dict_missing_key(self):
        model = MLP(4, [4], 2)
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), MLP(4, [4], 2))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_gradients(self):
        model = Linear(3, 2)
        out = model(Tensor(np.ones((1, 3)), requires_grad=False)).sum()
        out.backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_batchnorm_buffers_in_state_dict(self):
        bn = BatchNorm1d(3)
        state = bn.state_dict()
        assert any("running_mean" in key for key in state)

    def test_clone_is_independent(self):
        model = Linear(2, 2, rng=np.random.default_rng(0))
        clone = model.clone()
        clone.weight.data[...] = 0.0
        assert not np.allclose(model.weight.data, 0.0)
