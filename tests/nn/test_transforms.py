"""Tests for data augmentations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import (Compose, GaussianJitter, IdentityTransform,
                      RandomFeatureDrop, RandomPermuteBlocks, RandomScale,
                      strong_augment, weak_augment)


class TestIndividualTransforms:
    def test_identity(self, rng):
        batch = np.arange(6.0).reshape(2, 3)
        np.testing.assert_allclose(IdentityTransform()(batch, rng), batch)

    def test_gaussian_jitter_zero_sigma_is_identity(self, rng):
        batch = np.ones((3, 4))
        np.testing.assert_allclose(GaussianJitter(0.0)(batch, rng), batch)

    def test_gaussian_jitter_preserves_shape_and_changes_values(self, rng):
        batch = np.zeros((5, 8))
        out = GaussianJitter(0.5)(batch, rng)
        assert out.shape == batch.shape
        assert not np.allclose(out, batch)

    def test_random_scale_bounds(self, rng):
        batch = np.ones((100, 2))
        out = RandomScale(0.5, 2.0)(batch, rng)
        assert (out >= 0.5 - 1e-12).all() and (out <= 2.0 + 1e-12).all()

    def test_random_feature_drop_fraction(self, rng):
        batch = np.ones((200, 50))
        out = RandomFeatureDrop(0.3)(batch, rng)
        dropped_fraction = (out == 0).mean()
        assert dropped_fraction == pytest.approx(0.3, abs=0.03)

    def test_random_permute_blocks_preserves_multiset(self, rng):
        batch = np.arange(12.0).reshape(1, 12)
        out = RandomPermuteBlocks(4)(batch, rng)
        assert sorted(out.reshape(-1).tolist()) == sorted(batch.reshape(-1).tolist())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GaussianJitter(-1.0)
        with pytest.raises(ValueError):
            RandomScale(2.0, 1.0)
        with pytest.raises(ValueError):
            RandomFeatureDrop(1.0)
        with pytest.raises(ValueError):
            RandomPermuteBlocks(0)


class TestComposition:
    def test_compose_applies_in_order(self, rng):
        batch = np.ones((2, 3))
        transform = Compose([RandomScale(2.0, 2.0), GaussianJitter(0.0)])
        np.testing.assert_allclose(transform(batch, rng), 2 * batch)

    def test_weak_and_strong_builders(self, rng):
        batch = np.random.default_rng(1).normal(size=(6, 10))
        weak_out = weak_augment()(batch, rng)
        strong_out = strong_augment()(batch, np.random.default_rng(0))
        assert weak_out.shape == batch.shape
        assert strong_out.shape == batch.shape
        # Strong augmentation perturbs more than weak augmentation on average.
        weak_delta = np.abs(weak_out - batch).mean()
        strong_delta = np.abs(strong_out - batch).mean()
        assert strong_delta > weak_delta

    def test_determinism_given_rng(self):
        batch = np.random.default_rng(2).normal(size=(4, 6))
        out_a = strong_augment()(batch, np.random.default_rng(7))
        out_b = strong_augment()(batch, np.random.default_rng(7))
        np.testing.assert_allclose(out_a, out_b)


@settings(max_examples=25, deadline=None)
@given(hnp.arrays(np.float64, (3, 8), elements=st.floats(-10, 10)))
def test_property_transforms_preserve_shape(batch):
    rng = np.random.default_rng(0)
    for transform in [weak_augment(), strong_augment(),
                      RandomPermuteBlocks(3), RandomFeatureDrop(0.2)]:
        assert transform(batch, rng).shape == batch.shape
