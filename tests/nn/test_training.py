"""Tests for the shared training loops."""

import numpy as np
import pytest

from repro.nn import (MLP, TrainConfig, build_optimizer, build_scheduler,
                      evaluate_accuracy, iterate_forever, predict_logits,
                      predict_proba, train_classifier, train_soft_classifier)
from repro.nn import functional as F
from repro.nn.data import ArrayDataset, DataLoader


def make_blobs(n_per_class=60, num_classes=3, dim=8, seed=0):
    """Well-separated Gaussian blobs: any sensible trainer should fit them."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 3.0, size=(num_classes, dim))
    features = []
    labels = []
    for cls in range(num_classes):
        features.append(centers[cls] + rng.normal(0.0, 0.5, size=(n_per_class, dim)))
        labels.append(np.full(n_per_class, cls))
    return np.concatenate(features), np.concatenate(labels)


class TestTrainClassifier:
    def test_learns_separable_blobs(self):
        features, labels = make_blobs()
        model = MLP(8, [16], 3, rng=np.random.default_rng(0))
        train_classifier(model, features, labels,
                         TrainConfig(epochs=15, lr=0.05, batch_size=32, seed=0))
        assert evaluate_accuracy(model, features, labels) > 0.95

    def test_callback_receives_decreasing_loss(self):
        features, labels = make_blobs()
        model = MLP(8, [16], 3, rng=np.random.default_rng(0))
        losses = []
        train_classifier(model, features, labels,
                         TrainConfig(epochs=10, lr=0.05, seed=0),
                         callback=lambda epoch, loss: losses.append(loss))
        assert len(losses) == 10
        assert losses[-1] < losses[0]

    def test_empty_dataset_rejected(self):
        model = MLP(4, [4], 2)
        with pytest.raises(ValueError):
            train_classifier(model, np.zeros((0, 4)), np.zeros(0), TrainConfig())

    def test_deterministic_given_seed(self):
        features, labels = make_blobs(n_per_class=20)
        outputs = []
        for _ in range(2):
            model = MLP(8, [8], 3, rng=np.random.default_rng(3))
            train_classifier(model, features, labels,
                             TrainConfig(epochs=3, lr=0.05, seed=11))
            outputs.append(predict_logits(model, features[:5]))
        np.testing.assert_allclose(outputs[0], outputs[1])


class TestSoftTraining:
    def test_learns_from_soft_labels(self):
        features, labels = make_blobs()
        soft = F.one_hot(labels, 3) * 0.9 + 0.1 / 3
        model = MLP(8, [16], 3, rng=np.random.default_rng(0))
        train_soft_classifier(model, features, soft,
                              TrainConfig(epochs=15, lr=0.05, seed=0))
        assert evaluate_accuracy(model, features, labels) > 0.9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            train_soft_classifier(MLP(4, [4], 2), np.zeros((0, 4)),
                                  np.zeros((0, 2)), TrainConfig())


class TestPrediction:
    def test_predict_proba_rows_sum_to_one(self):
        model = MLP(6, [8], 4, rng=np.random.default_rng(0))
        probs = predict_proba(model, np.random.default_rng(1).normal(size=(10, 6)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(10))

    def test_predict_handles_batching(self):
        model = MLP(6, [8], 4, rng=np.random.default_rng(0))
        features = np.random.default_rng(1).normal(size=(300, 6))
        full = predict_logits(model, features, batch_size=64)
        assert full.shape == (300, 4)
        np.testing.assert_allclose(full, predict_logits(model, features, batch_size=7))

    def test_predict_empty(self):
        model = MLP(6, [8], 4)
        assert predict_logits(model, np.zeros((0, 6))).size == 0


class TestBuilders:
    def test_build_optimizer_variants(self):
        model = MLP(4, [4], 2)
        assert build_optimizer(model, TrainConfig(optimizer="sgd")).__class__.__name__ == "SGD"
        assert build_optimizer(model, TrainConfig(optimizer="adam")).__class__.__name__ == "Adam"
        with pytest.raises(ValueError):
            build_optimizer(model, TrainConfig(optimizer="lbfgs"))

    def test_build_scheduler_epoch_milestones(self):
        model = MLP(4, [4], 2)
        config = TrainConfig(scheduler="multistep", milestones=(2,), lr=1.0)
        optimizer = build_optimizer(model, config)
        scheduler = build_scheduler(optimizer, config, total_steps=40,
                                    steps_per_epoch=10)
        # The milestone is epoch 2 = step 20.
        assert scheduler.get_lr(19) == pytest.approx(1.0)
        assert scheduler.get_lr(20) == pytest.approx(0.1)

    def test_build_scheduler_unknown(self):
        model = MLP(4, [4], 2)
        config = TrainConfig(scheduler="nope")
        optimizer = build_optimizer(model, config)
        with pytest.raises(ValueError):
            build_scheduler(optimizer, config, total_steps=10)

    def test_iterate_forever_cycles(self):
        loader = DataLoader(ArrayDataset(np.arange(8).reshape(4, 2), np.arange(4)),
                            batch_size=2, shuffle=False)
        stream = iterate_forever(loader)
        batches = [next(stream) for _ in range(5)]
        assert len(batches) == 5

    def test_config_with_updates(self):
        config = TrainConfig(epochs=5)
        updated = config.with_updates(epochs=7, lr=0.5)
        assert updated.epochs == 7 and updated.lr == 0.5
        assert config.epochs == 5
