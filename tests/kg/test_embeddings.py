"""Tests for concept embeddings and retrofitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg import (KnowledgeGraph, Relation, generate_text_embeddings,
                      normalize_rows, retrofit)
from repro.kg.similarity import cosine_similarity


def chain_graph(n=5):
    graph = KnowledgeGraph()
    for i in range(n - 1):
        graph.add_edge(f"c{i + 1}", f"c{i}", relation=Relation.IS_A)
    return graph


class TestTextEmbeddings:
    def test_children_closer_to_parent_than_to_strangers(self):
        graph = KnowledgeGraph()
        graph.add_edge("dog", "animal", relation=Relation.IS_A)
        graph.add_edge("cat", "animal", relation=Relation.IS_A)
        graph.add_edge("rock", "mineral", relation=Relation.IS_A)
        embeddings = generate_text_embeddings(graph, dim=32, seed=0)
        dog_animal = cosine_similarity(embeddings["dog"], embeddings["animal"])
        dog_rock = cosine_similarity(embeddings["dog"], embeddings["rock"])
        assert dog_animal > dog_rock

    def test_all_concepts_embedded(self):
        graph = chain_graph(6)
        graph.add_concept("isolated")
        embeddings = generate_text_embeddings(graph, dim=16, seed=0)
        assert set(embeddings) == set(graph.concepts)

    def test_deterministic(self):
        graph = chain_graph(4)
        a = generate_text_embeddings(graph, dim=8, seed=5)
        b = generate_text_embeddings(graph, dim=8, seed=5)
        for concept in graph.concepts:
            np.testing.assert_allclose(a[concept], b[concept])

    def test_invalid_inheritance(self):
        with pytest.raises(ValueError):
            generate_text_embeddings(chain_graph(3), inheritance=1.0)


class TestRetrofit:
    def test_no_iterations_returns_originals(self):
        graph = chain_graph(4)
        text = generate_text_embeddings(graph, dim=8, seed=0)
        retro = retrofit(graph, text, iterations=0)
        for concept in graph.concepts:
            np.testing.assert_allclose(retro[concept], text[concept])

    def test_pulls_neighbours_together(self):
        graph = KnowledgeGraph()
        graph.add_edge("a", "b", relation=Relation.RELATED_TO)
        rng = np.random.default_rng(0)
        text = {"a": rng.normal(size=8), "b": rng.normal(size=8)}
        retro = retrofit(graph, text, iterations=5)
        before = np.linalg.norm(text["a"] - text["b"])
        after = np.linalg.norm(retro["a"] - retro["b"])
        assert after < before

    def test_oov_concept_gets_neighbour_average(self):
        graph = KnowledgeGraph()
        graph.add_edge("new_thing", "a", relation=Relation.RELATED_TO)
        graph.add_edge("new_thing", "b", relation=Relation.RELATED_TO)
        text = {"a": np.array([1.0, 0.0]), "b": np.array([0.0, 1.0])}
        retro = retrofit(graph, text, iterations=10)
        np.testing.assert_allclose(retro["new_thing"], [0.5, 0.5], atol=0.2)

    def test_keeps_identity_anchor(self):
        # With degree normalization, a concept keeps a meaningful share of its
        # own text vector even when it has many neighbours.
        graph = KnowledgeGraph()
        for i in range(20):
            graph.add_edge("hub", f"n{i}", relation=Relation.RELATED_TO)
        rng = np.random.default_rng(0)
        text = {c: rng.normal(size=16) for c in graph.concepts}
        retro = retrofit(graph, text, iterations=10)
        assert cosine_similarity(retro["hub"], text["hub"]) > 0.4

    def test_inconsistent_dimensions_rejected(self):
        graph = chain_graph(3)
        with pytest.raises(ValueError):
            retrofit(graph, {"c0": np.zeros(3), "c1": np.zeros(4)})

    def test_empty_graph(self):
        assert retrofit(KnowledgeGraph(), {}) == {}

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            retrofit(chain_graph(3), {}, iterations=-1)


class TestNormalizeRows:
    def test_unit_norms(self):
        rows = normalize_rows(np.array([[3.0, 4.0], [0.0, 0.0]]))
        np.testing.assert_allclose(np.linalg.norm(rows[0]), 1.0)
        np.testing.assert_allclose(rows[1], [0.0, 0.0])


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 8), st.integers(1, 6))
def test_property_retrofit_preserves_concept_set(n_chain, iterations):
    graph = chain_graph(n_chain)
    text = generate_text_embeddings(graph, dim=8, seed=0)
    retro = retrofit(graph, text, iterations=iterations)
    assert set(retro) == set(graph.concepts)
    for vector in retro.values():
        assert np.isfinite(vector).all()
