"""Tests for the knowledge-graph data structure."""

import pytest

from repro.kg import KnowledgeGraph, Relation


@pytest.fixture()
def small_graph():
    graph = KnowledgeGraph()
    graph.add_edge("material", "entity", relation=Relation.IS_A)
    graph.add_edge("plastic", "material", relation=Relation.IS_A)
    graph.add_edge("cling_film", "plastic", relation=Relation.IS_A)
    graph.add_edge("plastic_bag", "plastic", relation=Relation.IS_A)
    graph.add_edge("stone", "material", relation=Relation.IS_A)
    graph.add_edge("plastic", "recycling_bin", relation=Relation.RELATED_TO,
                   weight=2.0)
    return graph


class TestConstruction:
    def test_normalization(self):
        assert KnowledgeGraph.normalize("Cling Film") == "cling_film"
        assert KnowledgeGraph.normalize("  desk-lamp ") == "desk_lamp"
        with pytest.raises(ValueError):
            KnowledgeGraph.normalize("  ")

    def test_add_concept_idempotent(self):
        graph = KnowledgeGraph()
        graph.add_concept("apple")
        graph.add_concept("Apple")
        assert len(graph) == 1

    def test_self_loop_rejected(self):
        graph = KnowledgeGraph()
        with pytest.raises(ValueError):
            graph.add_edge("a", "a")

    def test_unknown_relation_rejected(self):
        graph = KnowledgeGraph()
        with pytest.raises(ValueError):
            graph.add_edge("a", "b", relation="Likes")

    def test_nonpositive_weight_rejected(self):
        graph = KnowledgeGraph()
        with pytest.raises(ValueError):
            graph.add_edge("a", "b", weight=0.0)


class TestQueries:
    def test_contains_and_len(self, small_graph):
        assert "plastic" in small_graph
        assert "Cling Film" in small_graph
        assert "unknown" not in small_graph
        assert len(small_graph) == 7

    def test_neighbors_with_relation_filter(self, small_graph):
        lateral = small_graph.neighbors("plastic", relations=Relation.LATERAL)
        assert [n for n, _, _ in lateral] == ["recycling_bin"]
        all_neighbors = small_graph.neighbor_names("plastic")
        assert set(all_neighbors) == {"material", "cling_film", "plastic_bag",
                                      "recycling_bin"}

    def test_neighbors_unknown_concept(self, small_graph):
        with pytest.raises(KeyError):
            small_graph.neighbors("nonexistent")

    def test_hierarchy_queries(self, small_graph):
        assert small_graph.parent("plastic") == "material"
        assert small_graph.parent("entity") is None
        assert set(small_graph.children("plastic")) == {"cling_film", "plastic_bag"}
        assert small_graph.descendants("material") == {
            "plastic", "stone", "cling_film", "plastic_bag"}
        assert small_graph.ancestors("cling_film") == ["plastic", "material", "entity"]
        assert small_graph.roots() == ["entity"] or "entity" in small_graph.roots()

    def test_shortest_path(self, small_graph):
        assert small_graph.shortest_path_length("cling_film", "stone") == 3

    def test_edges_iterator(self, small_graph):
        edges = list(small_graph.edges())
        assert len(edges) == small_graph.num_edges()
        assert all(len(edge) == 4 for edge in edges)

    def test_degree(self, small_graph):
        assert small_graph.degree("plastic") == 4


class TestMutation:
    def test_remove_concepts(self, small_graph):
        removed = small_graph.remove_concepts(["plastic", "not_there"])
        assert removed == 1
        assert "plastic" not in small_graph
        # Children survive but lose their parent edge.
        assert "cling_film" in small_graph
        assert small_graph.parent("cling_film") is None

    def test_copy_is_independent(self, small_graph):
        duplicate = small_graph.copy()
        duplicate.remove_concepts(["plastic"])
        assert "plastic" in small_graph

    def test_subgraph(self, small_graph):
        sub = small_graph.subgraph(["plastic", "cling_film", "stone"])
        assert len(sub) == 3
        assert sub.children("plastic") == ["cling_film"]

    def test_to_networkx_copies(self, small_graph):
        nx_graph = small_graph.to_networkx()
        nx_graph.remove_node("plastic")
        assert "plastic" in small_graph
        assert small_graph.hierarchy_to_networkx().has_edge("material", "plastic")
