"""Tests for the procedural ConceptNet generator."""

import pytest

from repro.kg import GraphSpec, KnowledgeGraph, Relation, build_concept_graph
from repro.kg import vocabulary as vocab


@pytest.fixture(scope="module")
def graph():
    return build_concept_graph(GraphSpec(num_filler_concepts=200, seed=0))


class TestCoverage:
    def test_all_target_classes_present(self, graph):
        for cls in vocab.FMD_CLASSES + vocab.OFFICE_HOME_CLASSES + vocab.GROCERY_CLASSES:
            assert cls in graph, f"target class {cls} missing from the graph"

    def test_oov_grocery_classes_absent(self, graph):
        for cls in vocab.GROCERY_OOV_CLASSES:
            assert cls not in graph

    def test_oov_anchor_concepts_present(self, graph):
        for anchors in vocab.GROCERY_OOV_ANCHORS.values():
            for anchor in anchors:
                assert anchor in graph

    def test_figure4_plastic_neighbourhood(self, graph):
        children = set(graph.children("plastic"))
        # The closely-related plastic concepts of the paper's Figure 4.
        for expected in ["cling_film", "plastic_bag", "cellophane"]:
            assert expected in children

    def test_class_counts_match_paper(self):
        assert len(vocab.FMD_CLASSES) == 10
        assert len(vocab.OFFICE_HOME_CLASSES) == 65
        assert len(vocab.GROCERY_CLASSES) + len(vocab.GROCERY_OOV_CLASSES) == 42


class TestStructure:
    def test_filler_haystack_size(self, graph):
        fillers = [c for c in graph.concepts if c.startswith("filler_")]
        assert len(fillers) == 200

    def test_every_target_class_has_lateral_cousins(self, graph):
        """Prune level 0 must leave each class some related (non-descendant) concepts."""
        for cls in vocab.FMD_CLASSES:
            descendants = graph.descendants(cls)
            lateral = [n for n, rel, _ in graph.neighbors(cls)
                       if rel == Relation.RELATED_TO and n not in descendants]
            assert lateral, f"{cls} has no lateral relatives surviving prune level 0"

    def test_single_root(self, graph):
        roots = graph.roots()
        assert "entity" in roots

    def test_deterministic_given_seed(self):
        a = build_concept_graph(GraphSpec(num_filler_concepts=50, seed=3))
        b = build_concept_graph(GraphSpec(num_filler_concepts=50, seed=3))
        assert sorted(a.concepts) == sorted(b.concepts)
        assert a.num_edges() == b.num_edges()

    def test_different_seed_changes_cross_links(self):
        a = build_concept_graph(GraphSpec(num_filler_concepts=50, seed=1))
        b = build_concept_graph(GraphSpec(num_filler_concepts=50, seed=2))
        edges_a = {frozenset((u, v)) for u, v, _, _ in a.edges()}
        edges_b = {frozenset((u, v)) for u, v, _, _ in b.edges()}
        assert edges_a != edges_b

    def test_vocabulary_helper(self):
        concepts = vocab.all_curated_concepts()
        assert "plastic" in concepts and "entity" in concepts
        assert len(concepts) == len(set(concepts))
