"""Tests for embedding similarity queries."""

import numpy as np
import pytest

from repro.kg import EmbeddingIndex, cosine_similarity, top_k_similar


class TestCosineSimilarity:
    def test_parallel_and_orthogonal(self):
        assert cosine_similarity([1, 0], [2, 0]) == pytest.approx(1.0)
        assert cosine_similarity([1, 0], [0, 3]) == pytest.approx(0.0)
        assert cosine_similarity([1, 0], [-1, 0]) == pytest.approx(-1.0)

    def test_zero_vector(self):
        assert cosine_similarity([0, 0], [1, 2]) == 0.0


class TestEmbeddingIndex:
    @pytest.fixture()
    def index(self):
        return EmbeddingIndex({
            "a": np.array([1.0, 0.0]),
            "b": np.array([0.9, 0.1]),
            "c": np.array([0.0, 1.0]),
            "d": np.array([-1.0, 0.0]),
        })

    def test_top_k_order(self, index):
        results = index.top_k(np.array([1.0, 0.0]), k=3)
        assert [name for name, _ in results] == ["a", "b", "c"]
        scores = [score for _, score in results]
        assert scores == sorted(scores, reverse=True)

    def test_exclusion(self, index):
        results = index.top_k(np.array([1.0, 0.0]), k=2, exclude=["a"])
        assert [name for name, _ in results] == ["b", "c"]

    def test_k_zero_and_zero_query(self, index):
        assert index.top_k(np.array([1.0, 0.0]), k=0) == []
        assert index.top_k(np.zeros(2), k=3) == []

    def test_k_larger_than_index(self, index):
        results = index.top_k(np.array([0.0, 1.0]), k=10)
        assert len(results) == 4

    def test_contains_and_vector(self, index):
        assert "a" in index and "zzz" not in index
        np.testing.assert_allclose(np.linalg.norm(index.vector("b")), 1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingIndex({})

    def test_top_k_similar_wrapper(self):
        embeddings = {"x": np.array([1.0, 0.0]), "y": np.array([0.0, 1.0])}
        results = top_k_similar(embeddings, np.array([1.0, 0.1]), k=1)
        assert results[0][0] == "x"
