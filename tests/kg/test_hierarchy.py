"""Tests for semantic-tree pruning (paper Section 4.3)."""

import pytest

from repro.kg import (KnowledgeGraph, PRUNE_LEVEL_0, PRUNE_LEVEL_1, PRUNE_NONE,
                      Relation, prune_graph, pruned_concepts)


@pytest.fixture()
def tree():
    graph = KnowledgeGraph()
    graph.add_edge("material", "entity", relation=Relation.IS_A)
    graph.add_edge("plastic", "material", relation=Relation.IS_A)
    graph.add_edge("stone", "material", relation=Relation.IS_A)
    graph.add_edge("cling_film", "plastic", relation=Relation.IS_A)
    graph.add_edge("cellophane", "plastic", relation=Relation.IS_A)
    graph.add_edge("marble", "stone", relation=Relation.IS_A)
    graph.add_edge("keyboard", "entity", relation=Relation.IS_A)
    return graph


class TestPrunedConcepts:
    def test_level_0_removes_class_and_descendants(self, tree):
        removed = pruned_concepts(tree, "plastic", PRUNE_LEVEL_0)
        assert removed == {"plastic", "cling_film", "cellophane"}

    def test_level_1_also_removes_parent_subtree(self, tree):
        removed = pruned_concepts(tree, "plastic", PRUNE_LEVEL_1)
        assert removed == {"plastic", "cling_film", "cellophane", "material",
                           "stone", "marble"}

    def test_unknown_class_prunes_nothing(self, tree):
        assert pruned_concepts(tree, "oatghurt", PRUNE_LEVEL_0) == set()

    def test_invalid_level(self, tree):
        with pytest.raises(ValueError):
            pruned_concepts(tree, "plastic", 2)


class TestPruneGraph:
    def test_no_pruning_returns_copy(self, tree):
        pruned = prune_graph(tree, ["plastic"], PRUNE_NONE)
        assert len(pruned) == len(tree)
        pruned.remove_concepts(["plastic"])
        assert "plastic" in tree

    def test_level_0_keeps_siblings(self, tree):
        pruned = prune_graph(tree, ["plastic"], PRUNE_LEVEL_0)
        assert "plastic" not in pruned
        assert "stone" in pruned
        assert "keyboard" in pruned

    def test_level_1_keeps_unrelated_branches(self, tree):
        pruned = prune_graph(tree, ["plastic"], PRUNE_LEVEL_1)
        assert "stone" not in pruned
        assert "keyboard" in pruned
        assert "entity" in pruned

    def test_multiple_target_classes(self, tree):
        pruned = prune_graph(tree, ["plastic", "stone"], PRUNE_LEVEL_0)
        assert "plastic" not in pruned and "stone" not in pruned
        assert "material" in pruned
