"""Packaging sanity: metadata and the NumPy-only engine contract.

``repro.nn`` — the training engine every module, baseline, and the end
model run through — must be installable with no extras: its modules may
import only the standard library, NumPy, and ``repro.nn`` itself (no
reaching into sibling subpackages that pull in scipy/networkx).
``setup.py`` must carry real metadata (it used to defer to a
``pyproject.toml`` that did not exist).
"""

import ast
import os
import sys

import repro
import repro.nn

SRC_ROOT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                        "src", "repro")
NN_ROOT = os.path.join(SRC_ROOT, "nn")

ALLOWED_TOP_LEVEL = {"numpy"}


def iter_nn_source_files():
    for dirpath, _, filenames in os.walk(NN_ROOT):
        for filename in filenames:
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def offending_imports(path):
    """Imports that would break a numpy-only install of ``repro.nn``."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if top not in ALLOWED_TOP_LEVEL and top not in STDLIB:
                    yield alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level >= 2:
                # ``from .. import X`` would reach outside repro.nn.
                yield "." * node.level + (node.module or "")
            elif node.level == 0 and node.module:
                top = node.module.split(".")[0]
                if top == "repro" and not node.module.startswith("repro.nn"):
                    yield node.module
                elif top != "repro" and top not in ALLOWED_TOP_LEVEL \
                        and top not in STDLIB:
                    yield node.module


STDLIB = set(sys.stdlib_module_names)


class TestExtrasFreeInstall:
    def test_repro_nn_imports_with_numpy_only(self):
        """repro.nn imports only stdlib, numpy, and itself."""
        offenders = {}
        for path in iter_nn_source_files():
            bad = sorted(set(offending_imports(path)))
            if bad:
                offenders[os.path.relpath(path, SRC_ROOT)] = bad
        assert not offenders, \
            f"repro.nn must depend on numpy only, found: {offenders}"

    def test_engine_package_is_importable(self):
        assert hasattr(repro.nn, "Tensor")
        assert hasattr(repro.nn, "no_grad")
        assert hasattr(repro.nn, "set_default_dtype")


class TestSetupMetadata:
    def test_setup_py_declares_metadata(self):
        setup_path = os.path.join(os.path.dirname(SRC_ROOT), os.pardir, "setup.py")
        with open(os.path.normpath(setup_path), "r", encoding="utf-8") as handle:
            tree = ast.parse(handle.read())
        call = next(node for node in ast.walk(tree)
                    if isinstance(node, ast.Call)
                    and getattr(node.func, "id", "") == "setup")
        keywords = {kw.arg for kw in call.keywords}
        for required in ("name", "version", "package_dir", "packages",
                         "python_requires", "install_requires"):
            assert required in keywords, f"setup() missing {required!r}"
