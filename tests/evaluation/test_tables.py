"""Tests for table formatting."""

import pytest

from repro.evaluation import format_results_table, format_series, results_matrix
from repro.evaluation.metrics import Aggregate
from repro.evaluation.runner import ExperimentResult


def record(method, shots, accuracy, backbone="resnet50", dataset="fmd", seed=0):
    return ExperimentResult(method=method, dataset=dataset, shots=shots,
                            split_seed=0, backbone=backbone, seed=seed,
                            accuracy=accuracy)


@pytest.fixture()
def records():
    out = []
    for seed, offset in enumerate([0.0, 0.02, -0.02]):
        out.append(record("finetune", 1, 0.30 + offset, seed=seed))
        out.append(record("finetune", 5, 0.60 + offset, seed=seed))
        out.append(record("taglets", 1, 0.50 + offset, seed=seed))
        out.append(record("taglets", 5, 0.80 + offset, seed=seed))
    return out


class TestResultsMatrix:
    def test_aggregation(self, records):
        matrix = results_matrix(records, dataset="fmd", backbone="resnet50",
                                shots_list=[1, 5], methods=["finetune", "taglets"])
        assert matrix["taglets"][5].mean == pytest.approx(0.80)
        assert matrix["finetune"][1].count == 3

    def test_missing_combinations_skipped(self, records):
        matrix = results_matrix(records, dataset="fmd", backbone="bit",
                                shots_list=[1], methods=["finetune"])
        assert matrix == {}

    def test_scenario_filter_selects_tagged_rows(self, records):
        from dataclasses import replace

        tagged = [replace(r, scenario="fmd_noise", scenario_family="corruption",
                          accuracy=r.accuracy - 0.2) for r in records]
        combined = records + tagged
        plain = results_matrix(combined, dataset="fmd", backbone="resnet50",
                               shots_list=[5], methods=["taglets"])
        noisy = results_matrix(combined, dataset="fmd", backbone="resnet50",
                               shots_list=[5], methods=["taglets"],
                               scenario="fmd_noise")
        # without a filter every row aggregates together; with one, only the
        # tagged scenario's rows survive — no string parsing involved
        assert noisy["taglets"][5].mean == pytest.approx(0.60)
        assert noisy["taglets"][5].count == 3
        assert plain["taglets"][5].count == 6


class TestFormatting:
    def test_format_results_table_contains_rows_and_values(self, records):
        text = format_results_table(records, dataset="fmd", shots_list=[1, 5],
                                    methods=["finetune", "taglets"],
                                    backbones=["resnet50"], title="FMD")
        assert "TAGLETS" in text
        assert "Fine-tuning" in text
        assert "80.00" in text  # taglets 5-shot as a percentage
        assert "1-shot" in text and "5-shot" in text

    def test_format_series(self):
        series = {"transfer": {1: Aggregate(0.5, 0.05, 3), 5: 0.7},
                  "zsl_kg": {1: Aggregate(0.3, 0.01, 3)}}
        text = format_series(series, title="Module accuracy")
        assert "Module accuracy" in text
        assert "transfer" in text and "zsl_kg" in text
        assert "50.00" in text
