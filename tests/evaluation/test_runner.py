"""Tests for the experiment runner and record aggregation."""

import numpy as np
import pytest

from repro.evaluation import (METHOD_REGISTRY, ExperimentResult, ExperimentRunner,
                              MethodSpec, aggregate_records, baseline_method,
                              taglets_method)


def fake_record(method="m", dataset="d", shots=1, split_seed=0, backbone="b",
                seed=0, accuracy=0.5, extras=None):
    return ExperimentResult(method=method, dataset=dataset, shots=shots,
                            split_seed=split_seed, backbone=backbone, seed=seed,
                            accuracy=accuracy, extras=extras or {})


class TestRecords:
    def test_as_dict_includes_extras(self):
        record = fake_record(extras={"ensemble": 0.6})
        data = record.as_dict()
        assert data["accuracy"] == 0.5
        assert data["extra_ensemble"] == 0.6

    def test_untagged_record_has_no_scenario_keys(self):
        # Plain experiment records keep their pre-scenario dict shape, so
        # existing table/figure consumers see no new keys.
        data = fake_record().as_dict()
        assert "scenario" not in data
        assert not any(key.startswith("axis_") for key in data)

    def test_scenario_tagged_record_carries_metadata(self):
        record = ExperimentResult(
            method="taglets", dataset="fmd", shots=1, split_seed=0,
            backbone="resnet50", seed=0, accuracy=0.6,
            scenario="fmd_1shot", scenario_family="scarcity",
            axes={"shots": 1, "imbalance": 0.2})
        data = record.as_dict()
        assert data["scenario"] == "fmd_1shot"
        assert data["scenario_family"] == "scarcity"
        assert data["axis_shots"] == 1
        assert data["axis_imbalance"] == 0.2

    def test_aggregate_records_tolerates_absent_group_fields(self):
        # Grouping by scenario must not KeyError on untagged records —
        # they land under the None key instead.
        records = [fake_record(accuracy=0.4),
                   ExperimentResult(method="m", dataset="d", shots=1,
                                    split_seed=0, backbone="b", seed=0,
                                    accuracy=0.8, scenario="s",
                                    scenario_family="clean")]
        aggregates = aggregate_records(records, group_by=("scenario",))
        assert aggregates[(None,)].mean == pytest.approx(0.4)
        assert aggregates[("s",)].mean == pytest.approx(0.8)

    def test_aggregate_records_groups_and_averages(self):
        records = [fake_record(seed=0, accuracy=0.4), fake_record(seed=1, accuracy=0.6),
                   fake_record(method="other", accuracy=0.9)]
        aggregates = aggregate_records(records, group_by=("method",))
        assert aggregates[("m",)].mean == pytest.approx(0.5)
        assert aggregates[("other",)].mean == pytest.approx(0.9)

    def test_aggregate_records_on_extra_metric(self):
        records = [fake_record(extras={"ensemble": 0.7}),
                   fake_record(seed=1, extras={"ensemble": 0.9})]
        aggregates = aggregate_records(records, group_by=("method",),
                                       value="extra_ensemble")
        assert aggregates[("m",)].mean == pytest.approx(0.8)


class TestRegistry:
    def test_registry_contains_paper_methods(self):
        expected = {"finetune", "finetune_distilled", "fixmatch",
                    "meta_pseudo_labels", "simclrv2", "taglets",
                    "taglets_prune0", "taglets_prune1"}
        assert expected <= set(METHOD_REGISTRY)

    def test_taglets_method_factory_names(self):
        spec = taglets_method("taglets_no_transfer",
                              modules=("multitask", "fixmatch", "zsl_kg"))
        assert isinstance(spec, MethodSpec)
        assert spec.name == "taglets_no_transfer"

    def test_baseline_method_unknown_name_fails_at_run_time(self, tiny_workspace,
                                                            fmd_split):
        spec = baseline_method("not_a_baseline")
        with pytest.raises(KeyError):
            spec.run(tiny_workspace, fmd_split, "resnet50", 0)


class TestRunner:
    def test_unknown_method_rejected(self, tiny_workspace):
        runner = ExperimentRunner(tiny_workspace)
        with pytest.raises(KeyError):
            runner.evaluate("nonexistent", "fmd", 1, 0, "resnet50", 0)

    def test_register_and_run_custom_method(self, tiny_workspace, tiny_backbone):
        """Run a tiny custom method through the full runner plumbing."""

        def run(workspace, split, backbone_name, seed):
            # A trivial majority-class 'method' — fast and deterministic.
            majority = np.bincount(split.labeled_labels).argmax()
            accuracy = float((split.test_labels == majority).mean())
            return ExperimentResult(method="majority", dataset=split.dataset_name,
                                    shots=split.shots, split_seed=split.split_seed,
                                    backbone=backbone_name, seed=seed,
                                    accuracy=accuracy)

        runner = ExperimentRunner(tiny_workspace, registry={})
        runner.register(MethodSpec(name="majority", run=run))
        records = runner.run_grid(methods=["majority"], datasets=["fmd"],
                                  shots_list=[1, 5], backbones=["unused"],
                                  split_seeds=[0], seeds=[0, 1])
        assert len(records) == 4
        assert {r.shots for r in records} == {1, 5}
        progress_calls = []
        runner.run_grid(methods=["majority"], datasets=["fmd"], shots_list=[1],
                        backbones=["unused"], progress=progress_calls.append)
        assert len(progress_calls) == 1
