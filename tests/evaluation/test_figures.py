"""Tests for the figure-series computations."""

import numpy as np
import pytest

from repro.evaluation import (ensemble_improvement_series, module_accuracy_series,
                              module_removal_deltas)
from repro.evaluation.runner import ExperimentResult


def taglets_record(method, shots, modules, ensemble, end_model, dataset="fmd",
                   backbone="resnet50", seed=0):
    extras = {f"module_{name}": value for name, value in modules.items()}
    extras["ensemble"] = ensemble
    extras["end_model"] = end_model
    return ExperimentResult(method=method, dataset=dataset, shots=shots,
                            split_seed=0, backbone=backbone, seed=seed,
                            accuracy=end_model, extras=extras)


@pytest.fixture()
def records():
    modules_full = {"multitask": 0.6, "transfer": 0.7, "fixmatch": 0.5, "zsl_kg": 0.3}
    modules_pruned = {"multitask": 0.5, "transfer": 0.55, "fixmatch": 0.45,
                      "zsl_kg": 0.3}
    return [
        taglets_record("taglets", 1, modules_full, ensemble=0.75, end_model=0.72),
        taglets_record("taglets", 5, modules_full, ensemble=0.85, end_model=0.86),
        taglets_record("taglets_prune0", 1, modules_pruned, ensemble=0.62,
                       end_model=0.60),
    ]


class TestModuleAccuracySeries:
    def test_series_structure(self, records):
        series = module_accuracy_series(records, dataset="fmd")
        assert series["transfer"][(1, "no_pruning")].mean == pytest.approx(0.7)
        assert series["multitask"][(1, "prune_level_0")].mean == pytest.approx(0.5)
        assert (5, "no_pruning") in series["fixmatch"]

    def test_filters_other_datasets(self, records):
        series = module_accuracy_series(records, dataset="grocery_store")
        assert all(not cells for cells in series.values())

    def test_scenario_filter(self, records):
        from dataclasses import replace

        tagged = replace(records[0], scenario="fmd_1shot_noise",
                         scenario_family="corruption")
        combined = records + [tagged]
        series = module_accuracy_series(combined, dataset="fmd",
                                        scenario="fmd_1shot_noise")
        assert series["transfer"][(1, "no_pruning")].count == 1
        untagged = module_accuracy_series(combined, dataset="fmd")
        assert untagged["transfer"][(1, "no_pruning")].count == 2


class TestEnsembleImprovementSeries:
    def test_gains_computed_against_average_module(self, records):
        gains = ensemble_improvement_series(records, dataset="fmd")
        cell = gains[(1, "no_pruning")]
        average = np.mean([0.6, 0.7, 0.5, 0.3])
        assert cell["ensemble_gain"].mean == pytest.approx(0.75 - average)
        assert cell["end_model_gain"].mean == pytest.approx(0.72 - average)

    def test_pruned_cells_present(self, records):
        gains = ensemble_improvement_series(records, dataset="fmd")
        assert (1, "prune_level_0") in gains


class TestModuleRemovalDeltas:
    def test_deltas_matched_on_grid_key(self, records):
        full = records[:2]
        ablated = {
            "transfer": [taglets_record("taglets_no_transfer", 1,
                                        {"multitask": 0.6}, 0.7, 0.65)],
            "zsl_kg": [taglets_record("taglets_no_zsl", 5, {"multitask": 0.6},
                                      0.8, 0.88)],
        }
        deltas = module_removal_deltas(full, ablated)
        assert deltas["transfer"].mean == pytest.approx(0.65 - 0.72)
        assert deltas["zsl_kg"].mean == pytest.approx(0.88 - 0.86)

    def test_unmatched_records_ignored(self, records):
        deltas = module_removal_deltas(records[:1], {
            "transfer": [taglets_record("x", 20, {"multitask": 0.5}, 0.6, 0.6)]})
        assert deltas == {}
