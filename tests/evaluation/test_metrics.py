"""Tests for metrics and confidence intervals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (Aggregate, confusion_matrix,
                              mean_confidence_interval, top1_accuracy)


class TestAccuracy:
    def test_top1(self):
        assert top1_accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)
        assert top1_accuracy(np.array([]), np.array([])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros(3), np.zeros(4))

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]), 3)
        assert matrix[0, 0] == 1 and matrix[2, 1] == 1 and matrix[2, 2] == 1
        assert matrix.sum() == 4


class TestConfusionMatrixEdges:
    def test_empty_split_yields_zero_matrix(self):
        matrix = confusion_matrix(np.array([]), np.array([]), 4)
        assert matrix.shape == (4, 4)
        assert matrix.sum() == 0

    def test_absent_classes_yield_zero_rows(self):
        # classes 0 and 3 never appear; their rows and columns stay zero
        matrix = confusion_matrix(np.array([1, 2]), np.array([1, 2]), 4)
        assert matrix[0].sum() == 0 and matrix[3].sum() == 0
        assert matrix[:, 0].sum() == 0 and matrix[:, 3].sum() == 0
        assert matrix[1, 1] == 1 and matrix[2, 2] == 1

    def test_negative_ids_rejected(self):
        # regression: -1 used to silently wrap into the last row/column
        with pytest.raises(ValueError, match="outside"):
            confusion_matrix(np.array([-1]), np.array([0]), 3)
        with pytest.raises(ValueError, match="outside"):
            confusion_matrix(np.array([0]), np.array([-1]), 3)

    def test_out_of_range_ids_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            confusion_matrix(np.array([3]), np.array([0]), 3)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same shape"):
            confusion_matrix(np.zeros(2), np.zeros(3), 3)

    def test_nonpositive_num_classes_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            confusion_matrix(np.array([]), np.array([]), 0)


class TestConfidenceInterval:
    def test_single_value(self):
        aggregate = mean_confidence_interval([0.7])
        assert aggregate.mean == pytest.approx(0.7)
        assert aggregate.half_width == 0.0
        assert aggregate.count == 1

    def test_known_interval(self):
        values = [0.5, 0.6, 0.7]
        aggregate = mean_confidence_interval(values)
        assert aggregate.mean == pytest.approx(0.6)
        # t(0.975, df=2) = 4.3027, sem = 0.1/sqrt(3)
        assert aggregate.half_width == pytest.approx(4.3027 * 0.1 / np.sqrt(3), rel=1e-3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_overlap_and_str(self):
        a = Aggregate(0.5, 0.1, 3)
        b = Aggregate(0.65, 0.1, 3)
        c = Aggregate(0.9, 0.05, 3)
        assert a.overlaps(b)
        assert not a.overlaps(c)
        assert "±" in str(a)
        assert a.as_tuple() == (0.5, 0.1)

    def test_overlap_boundary_equality_counts_as_overlap(self):
        # Intervals that exactly touch — |Δmean| == sum of half-widths —
        # are a tie under the paper's criterion.
        a = Aggregate(0.5, 0.1, 3)
        b = Aggregate(0.7, 0.1, 3)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(Aggregate(0.7 + 1e-9, 0.1, 3))

    def test_zero_width_intervals_overlap_only_when_equal(self):
        a = Aggregate(0.5, 0.0, 1)
        assert a.overlaps(Aggregate(0.5, 0.0, 1))
        assert not a.overlaps(Aggregate(0.500001, 0.0, 1))

    def test_single_value_interval_is_degenerate(self):
        aggregate = mean_confidence_interval([0.42])
        assert aggregate.as_tuple() == (pytest.approx(0.42), 0.0)
        assert aggregate.count == 1


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(0, 1), min_size=2, max_size=10))
def test_property_interval_contains_mean_and_is_nonnegative(values):
    aggregate = mean_confidence_interval(values)
    assert aggregate.half_width >= 0
    assert min(values) - 1e-9 <= aggregate.mean <= max(values) + 1e-9
