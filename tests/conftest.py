"""Shared fixtures for the test suite.

Integration-style tests need a knowledge graph, a visual world, SCADS, and
pretrained backbones.  Building those at full benchmark size for every test
would dominate the suite's runtime, so the fixtures here construct a reduced
— but otherwise identical — workspace once per session and reuse it
everywhere.  Keeping the reduced workspace structurally identical to the
benchmark workspace (same generator, same world, same backbone recipe, just a
smaller filler haystack) means behaviours verified here transfer to the
benchmark harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg import GraphSpec
from repro.synth import WorldSpec
from repro.workspace import Workspace, WorkspaceSpec


TEST_GRAPH_SPEC = GraphSpec(num_filler_concepts=300, seed=0)
TEST_WORLD_SPEC = WorldSpec(seed=0)


@pytest.fixture(scope="session")
def tiny_workspace() -> Workspace:
    """A reduced but structurally faithful workspace (small filler haystack)."""
    spec = WorkspaceSpec(graph=TEST_GRAPH_SPEC, world=TEST_WORLD_SPEC,
                         scads_images_per_concept=30, seed=0)
    return Workspace(spec)


@pytest.fixture(scope="session")
def tiny_backbone(tiny_workspace):
    """The ResNet-50 analog pretrained on the reduced workspace."""
    return tiny_workspace.backbone("resnet50")


@pytest.fixture(scope="session")
def fmd_split(tiny_workspace):
    """A 5-shot FMD split on the reduced workspace."""
    return tiny_workspace.make_task_split("fmd", shots=5, split_seed=0)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
