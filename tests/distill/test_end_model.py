"""Tests for the distillation stage / end model."""

import numpy as np
import pytest

from repro.distill import EndModel, EndModelConfig, train_end_model
from repro.nn import functional as F


FAST_CONFIG = EndModelConfig(epochs=8, lr=5e-3)


@pytest.fixture(scope="module")
def distillation_setup(tiny_workspace, tiny_backbone):
    split = tiny_workspace.make_task_split("fmd", shots=20, split_seed=0)
    # Build "good" pseudo labels from the (hidden) true labels of the unlabeled
    # pool by re-deriving them from the dataset; here we simulate an accurate
    # ensemble by smoothing one-hot targets of a nearest-prototype labeling.
    rng = np.random.default_rng(0)
    unlabeled = split.unlabeled_features[:150]
    # Cheap surrogate pseudo-labels: nearest labeled shot in input space.
    distances = np.linalg.norm(unlabeled[:, None, :] - split.labeled_features[None],
                               axis=2)
    nearest = split.labeled_labels[distances.argmin(axis=1)]
    pseudo = F.one_hot(nearest, split.num_classes) * 0.9 + 0.1 / split.num_classes
    return split, unlabeled, pseudo


class TestEndModel:
    def test_training_produces_servable_model(self, distillation_setup, tiny_backbone):
        split, unlabeled, pseudo = distillation_setup
        end_model = train_end_model(tiny_backbone, split.labeled_features,
                                    split.labeled_labels, unlabeled, pseudo,
                                    split.num_classes, FAST_CONFIG, seed=0)
        assert isinstance(end_model, EndModel)
        accuracy = end_model.accuracy(split.test_features, split.test_labels)
        assert accuracy > 1.0 / split.num_classes
        assert end_model.num_parameters() > 0

    def test_probabilities_valid(self, distillation_setup, tiny_backbone):
        split, unlabeled, pseudo = distillation_setup
        end_model = train_end_model(tiny_backbone, split.labeled_features,
                                    split.labeled_labels, unlabeled, pseudo,
                                    split.num_classes, FAST_CONFIG, seed=0)
        probs = end_model.predict_proba(split.test_features[:9])
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(9))

    def test_works_without_pseudo_labels(self, distillation_setup, tiny_backbone):
        split, _, _ = distillation_setup
        end_model = train_end_model(tiny_backbone, split.labeled_features,
                                    split.labeled_labels,
                                    np.zeros((0, split.labeled_features.shape[1])),
                                    np.zeros((0, split.num_classes)),
                                    split.num_classes, FAST_CONFIG, seed=0)
        assert end_model.accuracy(split.test_features, split.test_labels) > 0

    def test_hard_label_ablation(self, distillation_setup, tiny_backbone):
        split, unlabeled, pseudo = distillation_setup
        config = EndModelConfig(epochs=8, lr=5e-3, harden_pseudo_labels=True)
        end_model = train_end_model(tiny_backbone, split.labeled_features,
                                    split.labeled_labels, unlabeled, pseudo,
                                    split.num_classes, config, seed=0)
        assert end_model.accuracy(split.test_features, split.test_labels) > \
            1.0 / split.num_classes

    def test_validation_errors(self, distillation_setup, tiny_backbone):
        split, unlabeled, pseudo = distillation_setup
        with pytest.raises(ValueError):
            train_end_model(tiny_backbone, np.zeros((0, 16)), np.zeros(0),
                            unlabeled, pseudo, split.num_classes, FAST_CONFIG)
        with pytest.raises(ValueError):
            train_end_model(tiny_backbone, split.labeled_features,
                            split.labeled_labels, unlabeled, pseudo[:3],
                            split.num_classes, FAST_CONFIG)
