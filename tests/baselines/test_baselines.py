"""Tests for the baseline methods of the evaluation."""

import numpy as np
import pytest

from repro.baselines import (BaselineInput, DistilledFineTuningBaseline,
                             FineTuningBaseline, FineTuningConfig,
                             FixMatchBaseline, MetaPseudoLabelsBaseline,
                             MetaPseudoLabelsConfig, SimCLRBaseline,
                             SimCLRConfig, nt_xent_loss)
from repro.modules.fixmatch import FixMatchConfig
from repro.nn import Tensor


@pytest.fixture(scope="module")
def baseline_input(tiny_workspace, tiny_backbone, fmd_split):
    return BaselineInput(labeled_features=fmd_split.labeled_features,
                         labeled_labels=fmd_split.labeled_labels,
                         unlabeled_features=fmd_split.unlabeled_features[:100],
                         num_classes=fmd_split.num_classes,
                         backbone=tiny_backbone, seed=0)


FAST_FT = FineTuningConfig(epochs=30, distill_epochs=10)


class TestBaselineInput:
    def test_validation(self, tiny_backbone):
        bad = BaselineInput(labeled_features=np.zeros((2, 4)),
                            labeled_labels=np.array([0, 5]),
                            unlabeled_features=np.zeros((0, 4)),
                            num_classes=3, backbone=tiny_backbone)
        with pytest.raises(ValueError):
            bad.validate()


class TestFineTuning:
    def test_finetune_beats_chance(self, baseline_input, fmd_split):
        taglet = FineTuningBaseline(FAST_FT).train(baseline_input)
        assert taglet.accuracy(fmd_split.test_features, fmd_split.test_labels) > \
            2.0 / fmd_split.num_classes
        assert taglet.name == "finetune"

    def test_distilled_finetune_runs_and_beats_chance(self, baseline_input, fmd_split):
        taglet = DistilledFineTuningBaseline(FAST_FT).train(baseline_input)
        assert taglet.accuracy(fmd_split.test_features, fmd_split.test_labels) > \
            2.0 / fmd_split.num_classes
        assert taglet.name == "finetune_distilled"

    def test_distilled_without_unlabeled_falls_back(self, baseline_input, fmd_split):
        import copy

        no_unlabeled = copy.copy(baseline_input)
        no_unlabeled.unlabeled_features = np.zeros(
            (0, baseline_input.labeled_features.shape[1]))
        taglet = DistilledFineTuningBaseline(FAST_FT).train(no_unlabeled)
        assert taglet.accuracy(fmd_split.test_features, fmd_split.test_labels) > 0


class TestFixMatchBaseline:
    def test_never_uses_auxiliary_data(self):
        baseline = FixMatchBaseline(FixMatchConfig(use_aux_pretraining=True))
        assert baseline._module.config.use_aux_pretraining is False

    def test_beats_chance(self, baseline_input, fmd_split):
        baseline = FixMatchBaseline(FixMatchConfig(head_warmup_epochs=15, epochs=3))
        taglet = baseline.train(baseline_input)
        assert taglet.accuracy(fmd_split.test_features, fmd_split.test_labels) > \
            2.0 / fmd_split.num_classes
        assert taglet.name == "fixmatch_baseline"


class TestMetaPseudoLabels:
    def test_beats_chance(self, baseline_input, fmd_split):
        config = MetaPseudoLabelsConfig(steps=80, finetune_epochs=20)
        taglet = MetaPseudoLabelsBaseline(config).train(baseline_input)
        assert taglet.accuracy(fmd_split.test_features, fmd_split.test_labels) > \
            1.5 / fmd_split.num_classes

    def test_without_unlabeled_degenerates_to_finetuning(self, baseline_input,
                                                         fmd_split):
        import copy

        no_unlabeled = copy.copy(baseline_input)
        no_unlabeled.unlabeled_features = np.zeros(
            (0, baseline_input.labeled_features.shape[1]))
        config = MetaPseudoLabelsConfig(steps=10, finetune_epochs=6)
        taglet = MetaPseudoLabelsBaseline(config).train(no_unlabeled)
        assert taglet.accuracy(fmd_split.test_features, fmd_split.test_labels) > 0

    def test_student_backbone_override(self, baseline_input, tiny_backbone):
        config = MetaPseudoLabelsConfig(steps=5, finetune_epochs=2)
        baseline = MetaPseudoLabelsBaseline(config, student_backbone=tiny_backbone)
        taglet = baseline.train(baseline_input)
        assert taglet.model.encoder.spec.name == tiny_backbone.name


class TestSimCLR:
    def test_nt_xent_loss_prefers_aligned_pairs(self):
        rng = np.random.default_rng(0)
        anchors = rng.normal(size=(8, 6))
        aligned = nt_xent_loss(Tensor(anchors), Tensor(anchors + 0.01),
                               temperature=0.5).item()
        shuffled = nt_xent_loss(Tensor(anchors), Tensor(anchors[::-1].copy()),
                                temperature=0.5).item()
        assert aligned < shuffled

    def test_trains_and_predicts(self, baseline_input, fmd_split):
        config = SimCLRConfig(pretrain_epochs=1, finetune_epochs=15)
        taglet = SimCLRBaseline(config).train(baseline_input)
        probs = taglet.predict_proba(fmd_split.test_features[:5])
        assert probs.shape == (5, fmd_split.num_classes)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))
