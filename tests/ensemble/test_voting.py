"""Tests for taglet ensembling (paper Eq. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ensemble import TagletEnsemble, ensemble_probabilities, vote_matrix
from repro.modules.base import Taglet


class ConstantTaglet(Taglet):
    """A taglet that always returns the same probability matrix."""

    def __init__(self, name, probabilities):
        super().__init__(name)
        self._probabilities = np.asarray(probabilities, dtype=np.float64)

    def predict_proba(self, features):
        return np.tile(self._probabilities, (len(features), 1))


class TestVoteMatrix:
    def test_shape(self):
        votes = vote_matrix([np.full((4, 3), 1 / 3), np.full((4, 3), 1 / 3)])
        assert votes.shape == (2, 4, 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            vote_matrix([])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            vote_matrix([np.zeros((2, 3)), np.zeros((2, 4))])
        with pytest.raises(ValueError):
            vote_matrix([np.zeros(3)])


class TestEnsembleProbabilities:
    def test_average_of_members(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        np.testing.assert_allclose(ensemble_probabilities([a, b]), [[0.5, 0.5]])

    def test_single_member_identity(self):
        probs = np.array([[0.2, 0.8], [0.6, 0.4]])
        np.testing.assert_allclose(ensemble_probabilities([probs]), probs)

    def test_rows_renormalized(self):
        # Degenerate all-zero rows must not produce NaNs.
        out = ensemble_probabilities([np.zeros((2, 3))])
        assert np.isfinite(out).all()


class TestTagletEnsemble:
    def test_majority_of_confident_members_wins(self):
        good = ConstantTaglet("good", [0.9, 0.1])
        also_good = ConstantTaglet("good2", [0.8, 0.2])
        bad = ConstantTaglet("bad", [0.4, 0.6])
        ensemble = TagletEnsemble([good, also_good, bad])
        features = np.zeros((5, 2))
        assert (ensemble.predict(features) == 0).all()

    def test_member_accuracies_and_names(self):
        right = ConstantTaglet("right", [1.0, 0.0])
        wrong = ConstantTaglet("wrong", [0.0, 1.0])
        ensemble = TagletEnsemble([right, wrong])
        features, labels = np.zeros((4, 2)), np.zeros(4, dtype=int)
        accuracies = ensemble.member_accuracies(features, labels)
        assert accuracies == {"right": 1.0, "wrong": 0.0}
        assert ensemble.names == ["right", "wrong"]
        member = ensemble.member_probabilities(features)
        assert set(member) == {"right", "wrong"}

    def test_accuracy_empty_features(self):
        ensemble = TagletEnsemble([ConstantTaglet("a", [0.5, 0.5])])
        assert ensemble.accuracy(np.zeros((0, 2)), np.zeros(0)) == 0.0

    def test_requires_members(self):
        with pytest.raises(ValueError):
            TagletEnsemble([])


@settings(max_examples=25, deadline=None)
@given(hnp.arrays(np.float64, (3, 5, 4), elements=st.floats(0.01, 1.0)))
def test_property_pseudo_labels_are_distributions(raw_votes):
    # Normalize each member's rows so the inputs are valid probability vectors.
    votes = raw_votes / raw_votes.sum(axis=2, keepdims=True)
    pseudo = ensemble_probabilities(list(votes))
    assert pseudo.shape == (5, 4)
    assert (pseudo >= 0).all()
    np.testing.assert_allclose(pseudo.sum(axis=1), np.ones(5), atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(hnp.arrays(np.float64, (2, 4, 3), elements=st.floats(0.01, 1.0)))
def test_property_ensemble_is_permutation_invariant(raw_votes):
    votes = raw_votes / raw_votes.sum(axis=2, keepdims=True)
    forward = ensemble_probabilities([votes[0], votes[1]])
    reverse = ensemble_probabilities([votes[1], votes[0]])
    np.testing.assert_allclose(forward, reverse)
