"""Tests for SCADS embeddings (retrofitted vectors + OOV approximation)."""

import numpy as np
import pytest

from repro.kg import KnowledgeGraph, Relation
from repro.scads import ScadsEmbedding


@pytest.fixture(scope="module")
def graph():
    graph = KnowledgeGraph()
    graph.add_edge("material", "entity", relation=Relation.IS_A)
    graph.add_edge("plastic", "material", relation=Relation.IS_A)
    graph.add_edge("plastic_bag", "plastic", relation=Relation.IS_A)
    graph.add_edge("plastic_wrap", "plastic", relation=Relation.IS_A)
    graph.add_edge("stone", "material", relation=Relation.IS_A)
    graph.add_edge("yoghurt", "entity", relation=Relation.IS_A)
    graph.add_edge("carton", "entity", relation=Relation.IS_A)
    return graph


@pytest.fixture(scope="module")
def embedding(graph):
    return ScadsEmbedding(graph, dim=16, seed=0)


class TestVectors:
    def test_contains_and_get(self, embedding):
        assert "plastic" in embedding
        vector = embedding.get_vector("plastic")
        assert vector.shape == (16,)
        assert np.isfinite(vector).all()

    def test_get_vector_copies(self, embedding):
        first = embedding.get_vector("plastic")
        first[:] = 0.0
        assert not np.allclose(embedding.get_vector("plastic"), 0.0)

    def test_unknown_without_approximation(self, embedding):
        with pytest.raises(KeyError):
            embedding.get_vector("zzz_unknown", allow_approximation=False)

    def test_prefix_approximation(self, embedding):
        # "plastic_box" is not a concept, but shares a long prefix with
        # plastic / plastic_bag / plastic_wrap.
        approx = embedding.get_vector("plastic_box")
        reference = embedding.get_vector("plastic_bag")
        cosine = float(approx @ reference
                       / (np.linalg.norm(approx) * np.linalg.norm(reference)))
        assert cosine > 0.5

    def test_no_prefix_match_raises(self, embedding):
        with pytest.raises(KeyError):
            embedding.get_vector("xq")

    def test_register_vector(self, graph):
        embedding = ScadsEmbedding(graph, dim=16, seed=0)
        embedding.register_vector("new_node", np.ones(16))
        np.testing.assert_allclose(embedding.get_vector("new_node"), np.ones(16))
        with pytest.raises(ValueError):
            embedding.register_vector("bad", np.ones(4))

    def test_compute_node_vector_is_neighbour_average(self, graph):
        graph_copy = graph.copy()
        graph_copy.add_edge("oatghurt", "yoghurt", relation=Relation.RELATED_TO)
        graph_copy.add_edge("oatghurt", "carton", relation=Relation.RELATED_TO)
        embedding = ScadsEmbedding(graph, dim=16, seed=0)
        embedding.graph = graph_copy
        vector = embedding.compute_node_vector("oatghurt")
        expected = (embedding.get_vector("yoghurt") + embedding.get_vector("carton")) / 2
        np.testing.assert_allclose(vector, expected)


class TestRelatedConcepts:
    def test_related_concepts_returns_graph_neighbourhood(self, embedding):
        related = [c for c, _ in embedding.related_concepts("plastic", top_k=3)]
        assert "plastic_bag" in related or "plastic_wrap" in related

    def test_candidates_restriction(self, embedding):
        related = embedding.related_concepts("plastic", top_k=5,
                                             candidates=["stone", "yoghurt"])
        names = [c for c, _ in related]
        assert set(names) <= {"stone", "yoghurt"}

    def test_query_by_vector(self, embedding):
        vector = embedding.get_vector("plastic")
        related = embedding.related_concepts(vector, top_k=1)
        assert related[0][0] == "plastic"

    def test_empty_candidates(self, embedding):
        assert embedding.related_concepts("plastic", top_k=3, candidates=["nope"]) == []

    def test_scores_sorted_descending(self, embedding):
        scores = [s for _, s in embedding.related_concepts("plastic", top_k=5)]
        assert scores == sorted(scores, reverse=True)
