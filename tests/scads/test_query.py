"""Tests for SCADS auxiliary-data selection."""

import numpy as np
import pytest

from repro.datasets import ClassSpec
from repro.scads import select_auxiliary_data, target_class_vector


@pytest.fixture(scope="module")
def bundle(tiny_workspace):
    return tiny_workspace.scads


@pytest.fixture(scope="module")
def fmd_classes(tiny_workspace):
    return tiny_workspace.dataset("fmd").classes


class TestSelection:
    def test_selection_size_bounds(self, bundle, fmd_classes):
        selection = select_auxiliary_data(bundle.scads, bundle.embedding, fmd_classes,
                                          num_related_concepts=3, images_per_concept=5,
                                          rng=np.random.default_rng(0))
        assert 0 < len(selection) <= len(fmd_classes) * 3 * 5
        assert selection.num_aux_classes <= len(fmd_classes) * 3
        assert selection.features.shape[1] == bundle.scads.image_dim
        assert selection.labels.max() == selection.num_aux_classes - 1

    def test_selected_concepts_are_semantically_related(self, bundle, fmd_classes):
        selection = select_auxiliary_data(bundle.scads, bundle.embedding, fmd_classes,
                                          num_related_concepts=5, images_per_concept=2,
                                          rng=np.random.default_rng(0))
        plastic_related = selection.per_target_concepts["plastic"]
        assert plastic_related, "no concepts selected for plastic"
        # At least one selected concept should be from the plastic neighbourhood.
        neighbourhood = set(bundle.scads.graph.descendants("plastic")) | {"plastic"}
        neighbourhood |= set(bundle.scads.graph.neighbor_names("plastic"))
        assert set(plastic_related) & neighbourhood

    def test_concepts_deduplicated(self, bundle, fmd_classes):
        selection = select_auxiliary_data(bundle.scads, bundle.embedding, fmd_classes,
                                          num_related_concepts=3, images_per_concept=2,
                                          rng=np.random.default_rng(0))
        assert len(selection.concepts) == len(set(selection.concepts))

    def test_exclude_target_concepts(self, bundle, fmd_classes):
        selection = select_auxiliary_data(bundle.scads, bundle.embedding, fmd_classes,
                                          num_related_concepts=3, images_per_concept=2,
                                          exclude_target_concepts=True,
                                          rng=np.random.default_rng(0))
        target_names = {c.concept for c in fmd_classes}
        assert not set(selection.concepts) & target_names

    def test_pruned_selection_avoids_excluded_concepts(self, bundle, fmd_classes):
        pruned = bundle.pruned(fmd_classes, level=0)
        selection = pruned.select(fmd_classes, num_related_concepts=3,
                                  images_per_concept=2,
                                  rng=np.random.default_rng(0))
        excluded = pruned.scads.excluded_concepts
        assert not set(selection.concepts) & excluded

    def test_invalid_parameters(self, bundle, fmd_classes):
        with pytest.raises(ValueError):
            select_auxiliary_data(bundle.scads, bundle.embedding, fmd_classes,
                                  num_related_concepts=0)
        with pytest.raises(ValueError):
            select_auxiliary_data(bundle.scads, bundle.embedding, fmd_classes,
                                  images_per_concept=0)

    def test_selection_is_deterministic_given_rng(self, bundle, fmd_classes):
        a = select_auxiliary_data(bundle.scads, bundle.embedding, fmd_classes,
                                  num_related_concepts=2, images_per_concept=3,
                                  rng=np.random.default_rng(7))
        b = select_auxiliary_data(bundle.scads, bundle.embedding, fmd_classes,
                                  num_related_concepts=2, images_per_concept=3,
                                  rng=np.random.default_rng(7))
        np.testing.assert_allclose(a.features, b.features)
        assert a.concepts == b.concepts


class TestTargetClassVector:
    def test_in_vocabulary_class(self, bundle, fmd_classes):
        vector = target_class_vector(fmd_classes[0], bundle.scads, bundle.embedding)
        np.testing.assert_allclose(
            vector, bundle.embedding.get_vector(fmd_classes[0].concept))

    def test_oov_class_with_added_node(self, tiny_workspace):
        grocery = tiny_workspace.dataset("grocery_store")
        oov = [c for c in grocery.classes if c.name == "oatghurt"][0]
        vector = target_class_vector(oov, tiny_workspace.scads.scads,
                                     tiny_workspace.scads.embedding)
        assert vector is not None and np.isfinite(vector).all()

    def test_unmatchable_class_returns_none(self, bundle):
        spec = ClassSpec(name="zq", concept=None, anchors=("plastic",))
        assert target_class_vector(spec, bundle.scads, bundle.embedding) is None


class TestAuxiliarySelectionContainer:
    def test_empty_helpers(self):
        from repro.scads import AuxiliarySelection

        empty = AuxiliarySelection(features=np.zeros((0, 4)),
                                   labels=np.zeros(0, dtype=np.int64), concepts=[])
        assert empty.is_empty()
        assert len(empty) == 0
        assert empty.num_aux_classes == 0
