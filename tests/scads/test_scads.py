"""Tests for the SCADS repository."""

import numpy as np
import pytest

from repro.kg import KnowledgeGraph, Relation
from repro.scads import Scads


@pytest.fixture()
def graph():
    graph = KnowledgeGraph()
    graph.add_edge("material", "entity", relation=Relation.IS_A)
    graph.add_edge("plastic", "material", relation=Relation.IS_A)
    graph.add_edge("cling_film", "plastic", relation=Relation.IS_A)
    graph.add_edge("stone", "material", relation=Relation.IS_A)
    graph.add_edge("yoghurt", "entity", relation=Relation.IS_A)
    return graph


@pytest.fixture()
def scads(graph):
    scads = Scads(graph)
    rng = np.random.default_rng(0)
    scads.install_dataset("demo", {
        "plastic": rng.normal(size=(10, 4)),
        "cling_film": rng.normal(size=(8, 4)),
        "stone": rng.normal(size=(6, 4)),
    })
    return scads


class TestInstallation:
    def test_install_counts(self, scads):
        assert scads.num_images() == 24
        assert scads.num_images("plastic") == 10
        assert scads.installed_datasets == ["demo"]
        assert scads.image_dim == 4

    def test_install_unknown_concept(self, graph):
        scads = Scads(graph)
        with pytest.raises(KeyError):
            scads.install_dataset("bad", {"unknown": np.zeros((2, 4))})

    def test_install_bad_shape(self, graph):
        scads = Scads(graph)
        with pytest.raises(ValueError):
            scads.install_dataset("bad", {"plastic": np.zeros(4)})

    def test_duplicate_dataset_name(self, scads):
        with pytest.raises(ValueError):
            scads.install_dataset("demo", {"stone": np.zeros((1, 4))})

    def test_install_appends_to_existing_concept(self, scads, graph):
        scads.install_dataset("more", {"plastic": np.zeros((5, 4))})
        assert scads.num_images("plastic") == 15

    def test_image_dim_requires_installation(self, graph):
        with pytest.raises(RuntimeError):
            Scads(graph).image_dim


class TestRetrieval:
    def test_get_images_full_and_limited(self, scads):
        full = scads.get_images("plastic")
        assert full.shape == (10, 4)
        limited = scads.get_images("plastic", limit=3, rng=np.random.default_rng(0))
        assert limited.shape == (3, 4)

    def test_get_images_unknown(self, scads):
        with pytest.raises(KeyError):
            scads.get_images("yoghurt")

    def test_concepts_with_images(self, scads):
        assert set(scads.concepts_with_images()) == {"plastic", "cling_film", "stone"}
        assert scads.has_images("plastic")
        assert not scads.has_images("yoghurt")


class TestExtensibility:
    def test_add_node_with_edges(self, scads):
        scads.add_node("oatghurt", edges=[("yoghurt", Relation.RELATED_TO)])
        assert "oatghurt" in scads.graph
        assert "yoghurt" in scads.graph.neighbor_names("oatghurt")

    def test_add_node_then_install(self, scads):
        scads.add_node("oatghurt", edges=[("yoghurt", Relation.RELATED_TO)])
        scads.install_dataset("user", {"oatghurt": np.zeros((3, 4))})
        assert scads.num_images("oatghurt") == 3


class TestPruning:
    def test_prune_level_0_excludes_class_and_descendants(self, scads):
        pruned = scads.pruned(["plastic"], level=0)
        assert not pruned.has_images("plastic")
        assert not pruned.has_images("cling_film")
        assert pruned.has_images("stone")
        assert pruned.excluded_concepts == {"plastic", "cling_film"}

    def test_prune_level_1_excludes_parent_subtree(self, scads):
        pruned = scads.pruned(["plastic"], level=1)
        assert not pruned.has_images("stone")

    def test_prune_none_is_noop_view(self, scads):
        pruned = scads.pruned(["plastic"], level=None)
        assert pruned.has_images("plastic")

    def test_prune_does_not_mutate_original(self, scads):
        scads.pruned(["plastic"], level=1)
        assert scads.has_images("plastic")
        assert scads.num_images() == 24

    def test_prune_unknown_class_ignored(self, scads):
        pruned = scads.pruned(["not_there"], level=0)
        assert pruned.num_images() == 24
