"""Float32-vs-float64 accuracy parity over the benchmark grid.

ROADMAP open item (closed by this grid): the float32 fast mode was opt-in
until its accuracy was shown to match float64 across workloads.  This test
is the evidence gate — it runs the full pipeline on every target dataset of
the benchmark grid, under both backbones, in both engine dtypes, and
requires the final ensemble and end-model accuracies to agree within a
small tolerance.  Training under float32 takes different round-off paths,
so exact equality is not expected; what matters is that the *quality* of
the system is dtype-invariant.  With the grid covered, the experiment
runner's TAGLETS methods now default to float32
(:func:`repro.evaluation.runner.taglets_method`).
"""

import numpy as np
import pytest

from repro.core import Controller, ControllerConfig, Task
from repro.distill import EndModelConfig
from repro.modules import (MultiTaskConfig, MultiTaskModule, TransferConfig,
                           TransferModule, ZslKgConfig, ZslKgModule)

#: |accuracy(float64) - accuracy(float32)| must stay within this band.
TOLERANCE = 0.1

#: Every target dataset of the benchmark grid, with both pretrained
#: backbones represented across the sweep.
WORKLOADS = [
    ("fmd", "resnet50"),
    ("grocery_store", "resnet50"),
    ("officehome_product", "resnet50"),
    ("officehome_clipart", "bit"),
    ("fmd", "bit"),
]


def _fast_modules():
    return [
        MultiTaskModule(MultiTaskConfig(epochs=6)),
        TransferModule(TransferConfig(aux_epochs=6, target_epochs=15)),
        ZslKgModule(ZslKgConfig(pretrain_epochs=200, max_training_concepts=400,
                                images_per_prototype=6)),
    ]


@pytest.fixture(scope="module", params=WORKLOADS,
                ids=[f"{d}-{b}" for d, b in WORKLOADS])
def parity_accuracies(request, tiny_workspace):
    """(float64, float32) accuracy pairs for one (dataset, backbone) cell."""
    dataset, backbone_name = request.param
    split = tiny_workspace.make_task_split(dataset, shots=5, split_seed=0)
    backbone = tiny_workspace.backbone(backbone_name)
    results = {"num_classes": split.num_classes}
    for dtype in (None, "float32"):
        task = Task.from_split(split, scads=tiny_workspace.scads,
                               backbone=backbone,
                               wanted_num_related_class=3,
                               images_per_related_class=8)
        config = ControllerConfig(end_model=EndModelConfig(epochs=15),
                                  dtype=dtype, seed=0)
        controller = Controller(modules=_fast_modules(), config=config)
        result = controller.run(task)
        results[dtype or "float64"] = {
            "end_model": result.end_model_accuracy(split.test_features,
                                                   split.test_labels),
            "ensemble": result.ensemble_accuracy(split.test_features,
                                                 split.test_labels),
        }
    return f"{dataset}/{backbone_name}", results


class TestFloat32AccuracyParity:
    def test_end_model_accuracy_parity(self, parity_accuracies):
        workload, results = parity_accuracies
        gap = abs(results["float64"]["end_model"]
                  - results["float32"]["end_model"])
        assert gap <= TOLERANCE, (
            f"end-model accuracy diverges between dtypes on {workload}: "
            f"float64 {results['float64']['end_model']:.3f} vs "
            f"float32 {results['float32']['end_model']:.3f}")

    def test_ensemble_accuracy_parity(self, parity_accuracies):
        workload, results = parity_accuracies
        gap = abs(results["float64"]["ensemble"]
                  - results["float32"]["ensemble"])
        assert gap <= TOLERANCE, (
            f"ensemble accuracy diverges between dtypes on {workload}: "
            f"float64 {results['float64']['ensemble']:.3f} vs "
            f"float32 {results['float32']['ensemble']:.3f}")

    def test_both_dtypes_beat_chance(self, parity_accuracies):
        workload, results = parity_accuracies
        chance = 1.0 / results["num_classes"]
        for dtype in ("float64", "float32"):
            accuracy = results[dtype]["end_model"]
            assert accuracy > 1.2 * chance, (
                f"{dtype} end model degenerate on {workload}: "
                f"{accuracy:.3f} (chance {chance:.3f})")
