"""Tests for the public Task API."""

import numpy as np
import pytest

from repro.core import Task
from repro.datasets import ClassSpec


class TestTaskConstruction:
    def test_from_arrays_with_string_classes(self, tiny_backbone):
        rng = np.random.default_rng(0)
        task = Task(name="demo", classes=["plastic", "stone"],
                    labeled_features=rng.normal(size=(4, tiny_backbone.input_dim)),
                    labeled_labels=np.array([0, 1, 0, 1]))
        assert task.num_classes == 2
        assert task.class_names == ["plastic", "stone"]
        assert all(isinstance(c, ClassSpec) for c in task.classes)
        assert len(task.unlabeled_features) == 0
        assert not task.has_test_set

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            Task(name="bad", classes=[], labeled_features=np.zeros((1, 4)),
                 labeled_labels=np.zeros(1, dtype=int))
        with pytest.raises(ValueError):
            Task(name="bad", classes=["a"], labeled_features=np.zeros((0, 4)),
                 labeled_labels=np.zeros(0, dtype=int))
        with pytest.raises(ValueError):
            Task(name="bad", classes=["a"], labeled_features=np.zeros((2, 4)),
                 labeled_labels=np.array([0, 3]))
        with pytest.raises(ValueError):
            Task(name="bad", classes=["a", "b"], labeled_features=np.zeros((2, 4)),
                 labeled_labels=np.array([0, 1]), input_shape=9)

    def test_backbone_handling(self, tiny_backbone):
        task = Task(name="demo", classes=["a", "b"],
                    labeled_features=np.zeros((2, tiny_backbone.input_dim)),
                    labeled_labels=np.array([0, 1]))
        with pytest.raises(RuntimeError):
            _ = task.backbone
        task.set_initial_model(tiny_backbone)
        assert task.backbone is tiny_backbone
        assert task.has_backbone

    def test_backbone_dimension_mismatch(self, tiny_backbone):
        task = Task(name="demo", classes=["a"],
                    labeled_features=np.zeros((1, tiny_backbone.input_dim + 1)),
                    labeled_labels=np.array([0]))
        with pytest.raises(ValueError):
            task.set_initial_model(tiny_backbone)

    def test_from_split(self, tiny_workspace, tiny_backbone, fmd_split):
        task = Task.from_split(fmd_split, scads=tiny_workspace.scads,
                               backbone=tiny_backbone)
        assert task.num_classes == 10
        assert task.has_test_set
        assert task.has_backbone
        summary = task.summary()
        assert summary["labeled"] == 50
        assert summary["backbone"] == "resnet50"
