"""Tests for the Controller: the end-to-end TAGLETS pipeline."""

import numpy as np
import pytest

from repro.core import Controller, ControllerConfig, Task
from repro.distill import EndModelConfig
from repro.modules import (FixMatchConfig, FixMatchModule, MultiTaskConfig,
                           MultiTaskModule, TransferConfig, TransferModule,
                           ZslKgConfig, ZslKgModule)


def fast_modules():
    """Module instances with reduced budgets, for quick integration tests."""
    return [
        MultiTaskModule(MultiTaskConfig(epochs=6)),
        TransferModule(TransferConfig(aux_epochs=6, target_epochs=15)),
        FixMatchModule(FixMatchConfig(aux_epochs=4, head_warmup_epochs=10, epochs=3)),
        ZslKgModule(ZslKgConfig(pretrain_epochs=200, max_training_concepts=400,
                                images_per_prototype=6)),
    ]


@pytest.fixture(scope="module")
def fast_config():
    return ControllerConfig(end_model=EndModelConfig(epochs=15), seed=0)


@pytest.fixture(scope="module")
def task(tiny_workspace, tiny_backbone, fmd_split):
    return Task.from_split(fmd_split, scads=tiny_workspace.scads,
                           backbone=tiny_backbone,
                           wanted_num_related_class=3, images_per_related_class=8)


@pytest.fixture(scope="module")
def result(task, fast_config):
    controller = Controller(modules=fast_modules(), config=fast_config)
    return controller.run(task)


class TestControllerPipeline:
    def test_produces_all_artifacts(self, result, task):
        assert len(result.taglets) == 4
        assert result.end_model is not None
        assert result.pseudo_labels.shape == (len(task.unlabeled_features),
                                              task.num_classes)
        np.testing.assert_allclose(result.pseudo_labels.sum(axis=1),
                                   np.ones(len(task.unlabeled_features)))
        assert not result.auxiliary.is_empty()

    def test_end_model_beats_chance(self, result, fmd_split):
        accuracy = result.end_model_accuracy(fmd_split.test_features,
                                             fmd_split.test_labels)
        assert accuracy > 2.0 / fmd_split.num_classes

    def test_module_and_ensemble_accuracies(self, result, fmd_split):
        accuracies = result.module_accuracies(fmd_split.test_features,
                                              fmd_split.test_labels)
        assert set(accuracies) == {"multitask", "transfer", "fixmatch", "zsl_kg"}
        ensemble = result.ensemble_accuracy(fmd_split.test_features,
                                            fmd_split.test_labels)
        assert ensemble >= max(accuracies.values()) - 0.25

    def test_taglet_lookup(self, result):
        assert result.taglet("transfer").name == "transfer"
        with pytest.raises(KeyError):
            result.taglet("missing")


class TestControllerConfiguration:
    def test_module_names_resolution(self):
        controller = Controller(modules=("transfer", "zsl_kg"))
        assert controller.module_names == ["transfer", "zsl_kg"]
        with pytest.raises(KeyError):
            Controller(modules=("unknown_module",))
        with pytest.raises(ValueError):
            Controller(modules=[])

    def test_requires_backbone(self, tiny_workspace, fmd_split):
        task = Task.from_split(fmd_split, scads=tiny_workspace.scads)
        with pytest.raises(RuntimeError):
            Controller(modules=["transfer"]).run(task)

    def test_runs_without_scads(self, tiny_backbone, fmd_split, fast_config):
        task = Task.from_split(fmd_split, scads=None, backbone=tiny_backbone)
        controller = Controller(
            modules=[TransferModule(TransferConfig(aux_epochs=1, target_epochs=6))],
            config=fast_config)
        result = controller.run(task)
        assert result.auxiliary.is_empty()
        assert result.end_model is not None

    def test_pruning_changes_selection(self, task, fast_config):
        unpruned = Controller(modules=["transfer"], config=fast_config)
        unpruned_selection = unpruned.select_auxiliary_data(task)
        pruned = Controller(modules=["transfer"],
                            config=ControllerConfig(prune_level=1, seed=0))
        pruned_selection = pruned.select_auxiliary_data(task)
        assert set(unpruned_selection.concepts) != set(pruned_selection.concepts)

    def test_train_end_model_entry_point(self, task, fast_config):
        controller = Controller(
            modules=[TransferModule(TransferConfig(aux_epochs=2, target_epochs=6))],
            config=fast_config)
        end_model = controller.train_end_model(task)
        assert end_model.name == "end_model"
        assert controller.last_result is not None
