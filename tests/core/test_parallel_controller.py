"""Determinism of the parallel controller (``parallel_modules=True``).

Every module seeds its RNGs from its own :class:`ModuleInput` and trains a
private copy of the backbone, so training the modules in a thread pool must
produce *bit-identical* taglets, pseudo labels, and end-model weights to the
sequential path for a fixed seed.  This is the invariant that makes the
parallel fast path safe to enable in production.
"""

import numpy as np
import pytest

from repro.core import Controller, ControllerConfig, Task
from repro.distill import EndModelConfig
from repro.modules import (FixMatchConfig, FixMatchModule, MultiTaskConfig,
                           MultiTaskModule, TransferConfig, TransferModule,
                           ZslKgConfig, ZslKgModule)


def tiny_modules():
    """All four paper modules with minimal budgets: determinism, not accuracy."""
    return [
        MultiTaskModule(MultiTaskConfig(epochs=2)),
        TransferModule(TransferConfig(aux_epochs=2, target_epochs=4)),
        FixMatchModule(FixMatchConfig(aux_epochs=2, head_warmup_epochs=3,
                                      epochs=2)),
        ZslKgModule(ZslKgConfig(pretrain_epochs=40, max_training_concepts=150,
                                images_per_prototype=4)),
    ]


@pytest.fixture(scope="module")
def task(tiny_workspace, tiny_backbone, fmd_split):
    return Task.from_split(fmd_split, scads=tiny_workspace.scads,
                           backbone=tiny_backbone,
                           wanted_num_related_class=2,
                           images_per_related_class=6)


def run_controller(task, parallel: bool):
    # Clear the ZSL-KG pretraining cache so both runs execute the exact same
    # code path (fresh pretraining) rather than one priming the other.
    ZslKgModule._pretrained_cache.clear()
    config = ControllerConfig(end_model=EndModelConfig(epochs=4),
                              parallel_modules=parallel, seed=7)
    controller = Controller(modules=tiny_modules(), config=config)
    return controller.run(task)


@pytest.fixture(scope="module")
def results(task):
    return run_controller(task, parallel=False), run_controller(task, parallel=True)


class TestParallelDeterminism:
    def test_pseudo_labels_bit_identical(self, results):
        sequential, parallel = results
        assert np.array_equal(sequential.pseudo_labels, parallel.pseudo_labels)

    def test_taglet_weights_bit_identical(self, results):
        sequential, parallel = results
        assert [t.name for t in sequential.taglets] == \
            [t.name for t in parallel.taglets]
        for seq_taglet, par_taglet in zip(sequential.taglets, parallel.taglets):
            seq_state = seq_taglet.model.state_dict()
            par_state = par_taglet.model.state_dict()
            assert sorted(seq_state) == sorted(par_state)
            for key in seq_state:
                assert np.array_equal(seq_state[key], par_state[key]), \
                    f"{seq_taglet.name}:{key} differs between runs"

    def test_end_model_weights_bit_identical(self, results):
        sequential, parallel = results
        seq_state = sequential.end_model.model.state_dict()
        par_state = parallel.end_model.model.state_dict()
        for key in seq_state:
            assert np.array_equal(seq_state[key], par_state[key]), \
                f"end_model:{key} differs between runs"

    def test_auxiliary_selection_identical(self, results):
        sequential, parallel = results
        assert sequential.auxiliary.concepts == parallel.auxiliary.concepts
        assert np.array_equal(sequential.auxiliary.features,
                              parallel.auxiliary.features)
