"""Tests for the scenario runner and scoreboard on the shared tiny workspace.

The session ``tiny_workspace`` fixture is spec-identical to
``scenario_workspace()`` (same graph, world, SCADS, and seeds), so cells run
here exercise exactly the data the committed floors were calibrated on.
"""

import numpy as np
import pytest

from repro.scenarios import (Gate, GateRegistry, ScenarioRunner, ScenarioSpec,
                             build_scoreboard, experiment_records,
                             format_scoreboard, get_scenario, load_scoreboard,
                             scenario_workspace_spec, write_scoreboard)
from repro.evaluation import aggregate_records


@pytest.fixture(scope="module")
def runner(tiny_workspace):
    return ScenarioRunner(tiny_workspace)


@pytest.fixture(scope="module")
def clean_rows(runner):
    spec = get_scenario("fmd_5shot_clean")
    return [runner.run_cell(spec, method="taglets", seed=0),
            runner.run_cell(spec, method="finetune", seed=0)]


class TestWorkspacePinning:
    def test_scenario_workspace_matches_test_fixture(self, tiny_workspace):
        # Floors calibrated on the scenario workspace transfer bit-for-bit
        # to rows computed on the tests' session workspace.
        assert scenario_workspace_spec() == tiny_workspace.spec


class TestRunCell:
    def test_taglets_row_complete(self, clean_rows):
        row = clean_rows[0]
        assert row.scenario == "fmd_5shot_clean"
        assert row.family == "clean" and row.method == "taglets"
        assert 0.0 <= row.accuracy <= 1.0
        assert row.wall_time_s > 0
        assert row.fallbacks == 0
        assert row.axes == {"shots": 5}
        assert {"ensemble", "end_model"} <= set(row.extras)

    def test_baseline_row(self, clean_rows):
        row = clean_rows[1]
        assert row.method == "finetune" and row.fallbacks == 0

    def test_unknown_method(self, runner):
        with pytest.raises(KeyError):
            runner.run_cell(get_scenario("fmd_5shot_clean"), method="magic")

    def test_multi_stage_records_per_stage_accuracy(self, runner):
        spec = ScenarioSpec(name="probe_2phase", family="incremental",
                            dataset="fmd", shots=5, phases=2)
        row = runner.run_cell(spec, method="taglets", seed=0)
        assert {"stage0_accuracy", "stage1_accuracy"} <= set(row.extras)
        assert row.extras["stage1_accuracy"] == pytest.approx(row.accuracy)
        assert row.fallbacks == 0


class TestRunGrid:
    def test_grid_yields_row_per_cell_with_progress(self, runner):
        specs = [get_scenario("fmd_5shot_clean")]
        seen = []
        rows = runner.run_grid(specs, methods=("taglets", "finetune"),
                               seeds=(0,), progress=seen.append)
        assert len(rows) == 2 and seen == rows
        assert {row.method for row in rows} == {"taglets", "finetune"}


class TestExperimentRecords:
    def test_rows_become_scenario_tagged_records(self, clean_rows):
        records = experiment_records(clean_rows)
        for record in records:
            assert record.scenario == "fmd_5shot_clean"
            assert record.scenario_family == "clean"
            data = record.as_dict()
            assert data["scenario"] == "fmd_5shot_clean"
            assert data["axis_shots"] == 5

    def test_records_aggregate_by_scenario(self, clean_rows):
        aggregates = aggregate_records(
            [r.as_experiment_result() for r in clean_rows],
            group_by=("scenario", "method"))
        assert ("fmd_5shot_clean", "taglets") in aggregates


class TestScoreboard:
    def test_round_trip(self, clean_rows, tmp_path):
        registry = GateRegistry([Gate("fmd_5shot_clean", "accuracy", 0.1)])
        reports = registry.check(clean_rows)
        path = tmp_path / "scoreboard.json"
        written = write_scoreboard(str(path), clean_rows, reports)
        loaded = load_scoreboard(str(path))
        assert loaded == written
        entry = loaded["scenarios"]["fmd_5shot_clean"]
        assert set(entry["methods"]) == {"taglets", "finetune"}
        assert entry["methods"]["taglets"]["fallbacks"] == 0
        assert entry["gates"][0]["passed"] is True

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99}')
        with pytest.raises(ValueError):
            load_scoreboard(str(path))

    def test_build_scoreboard_families(self, clean_rows):
        scoreboard = build_scoreboard(clean_rows)
        assert scoreboard["families"] == ["clean"]

    def test_format_scoreboard_mentions_rows(self, clean_rows):
        text = format_scoreboard(clean_rows)
        assert "fmd_5shot_clean" in text and "taglets" in text
