"""Tests for the gate registry: floors, margins, and failure semantics."""

import pytest

from repro.scenarios import (DEFAULT_GATES, SCENARIO_GRID, Gate, GateFailure,
                             GateRegistry, ScenarioResult, default_registry)


def _row(scenario="s", method="taglets", accuracy=0.5, seed=0, family="clean"):
    return ScenarioResult(scenario=scenario, family=family, method=method,
                          dataset="fmd", shots=5, backbone="resnet50",
                          seed=seed, accuracy=accuracy, wall_time_s=0.1)


class TestAccuracyGates:
    def test_pass_and_fail(self):
        registry = GateRegistry([Gate("s", "accuracy", 0.4)])
        passing = registry.check([_row(accuracy=0.5)])
        assert len(passing) == 1 and passing[0].passed
        assert passing[0].observed == pytest.approx(0.5)
        failing = registry.check([_row(accuracy=0.3)])
        assert not failing[0].passed

    def test_mean_over_seeds(self):
        registry = GateRegistry([Gate("s", "accuracy", 0.45)])
        rows = [_row(accuracy=0.4, seed=0), _row(accuracy=0.6, seed=1)]
        report = registry.check(rows)[0]
        assert report.passed and report.observed == pytest.approx(0.5)

    def test_boundary_equality_passes(self):
        registry = GateRegistry([Gate("s", "accuracy", 0.5)])
        assert registry.check([_row(accuracy=0.5)])[0].passed


class TestMarginGates:
    def test_margin_is_method_minus_baseline(self):
        registry = GateRegistry(
            [Gate("s", "margin", 0.1, method="taglets", baseline="finetune")])
        rows = [_row(method="taglets", accuracy=0.7),
                _row(method="finetune", accuracy=0.55)]
        report = registry.check(rows)[0]
        assert report.passed and report.observed == pytest.approx(0.15)

    def test_margin_breached(self):
        registry = GateRegistry([Gate("s", "margin", 0.2)])
        rows = [_row(method="taglets", accuracy=0.6),
                _row(method="finetune", accuracy=0.55)]
        assert not registry.check(rows)[0].passed

    def test_missing_baseline_fails(self):
        registry = GateRegistry([Gate("s", "margin", 0.1)])
        report = registry.check([_row(method="taglets")])[0]
        assert not report.passed and report.observed is None


class TestMissingRows:
    def test_absent_scenario_skipped_by_default(self):
        # A smoke subset must not be failed for scenarios it never ran.
        registry = GateRegistry([Gate("ran", "accuracy", 0.4),
                                 Gate("not_ran", "accuracy", 0.4)])
        reports = registry.check([_row(scenario="ran", accuracy=0.5)])
        assert len(reports) == 1 and reports[0].gate.scenario == "ran"

    def test_require_all_fails_absent_scenario(self):
        registry = GateRegistry([Gate("not_ran", "accuracy", 0.4)])
        reports = registry.check([_row(scenario="other")], require_all=True)
        assert len(reports) == 1 and not reports[0].passed

    def test_present_scenario_missing_method_always_fails(self):
        registry = GateRegistry([Gate("s", "accuracy", 0.4,
                                      method="taglets")])
        report = registry.check([_row(method="finetune")])[0]
        assert not report.passed and "taglets" in report.detail


class TestAssertAll:
    def test_raises_naming_every_breach(self):
        registry = GateRegistry([Gate("s", "accuracy", 0.9),
                                 Gate("s", "margin", 0.5)])
        rows = [_row(method="taglets", accuracy=0.5),
                _row(method="finetune", accuracy=0.4)]
        with pytest.raises(GateFailure) as excinfo:
            registry.assert_all(rows)
        message = str(excinfo.value)
        assert "2 scenario gate(s) breached" in message
        assert "accuracy >= 0.90" in message and "margin >= 0.50" in message

    def test_returns_reports_when_all_pass(self):
        registry = GateRegistry([Gate("s", "accuracy", 0.4)])
        reports = registry.assert_all([_row(accuracy=0.5)])
        assert len(reports) == 1 and all(r.passed for r in reports)

    def test_gate_failure_is_assertion_error(self):
        assert issubclass(GateFailure, AssertionError)


class TestGateBasics:
    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            Gate("s", "f1", 0.5)

    def test_describe_and_report_str(self):
        gate = Gate("s", "margin", 0.1)
        assert "margin >= 0.10" in gate.describe()
        registry = GateRegistry([Gate("s", "accuracy", 0.4)])
        assert "[PASS]" in str(registry.check([_row(accuracy=0.5)])[0])

    def test_gates_for(self):
        registry = default_registry()
        assert len(registry) == len(DEFAULT_GATES)
        assert registry.gates_for("fmd_1shot")


class TestDefaultRegistry:
    def test_every_default_gate_targets_a_grid_scenario(self):
        for gate in DEFAULT_GATES:
            assert gate.scenario in SCENARIO_GRID

    def test_floors_cover_every_grid_scenario(self):
        guarded = {gate.scenario for gate in DEFAULT_GATES}
        assert guarded == set(SCENARIO_GRID)

    def test_margin_gates_guard_scarce_regimes(self):
        # The paper's headline claim: auxiliary data beats supervised
        # fine-tuning when labels are scarce.  At least one margin floor
        # must gate it.
        margins = [g for g in DEFAULT_GATES if g.metric == "margin"]
        assert margins
        assert all(SCENARIO_GRID[g.scenario].family == "scarcity"
                   for g in margins)
