"""Tests for scenario specs: axis transforms, staging, and the grid itself."""

import numpy as np
import pytest

from repro.scenarios import (FAMILIES, SCENARIO_GRID, SMOKE_SCENARIOS,
                             CorruptionAxis, ScenarioSpec, apply_corruption,
                             apply_imbalance, get_scenario,
                             scenarios_by_family)


@pytest.fixture(scope="module")
def clean_spec():
    return ScenarioSpec(name="probe_clean", family="clean", dataset="fmd",
                        shots=5)


class TestGridCoverage:
    def test_grid_covers_every_family(self):
        covered = {spec.family for spec in SCENARIO_GRID.values()}
        assert covered == set(FAMILIES)
        assert len(covered) >= 5  # the issue's floor; we cover all seven

    def test_smoke_subset_spans_families(self):
        covered = {SCENARIO_GRID[name].family for name in SMOKE_SCENARIOS}
        assert len(covered) >= 5
        assert set(SMOKE_SCENARIOS) <= set(SCENARIO_GRID)

    def test_names_are_keys(self):
        for name, spec in SCENARIO_GRID.items():
            assert spec.name == name

    def test_get_scenario(self):
        assert get_scenario("fmd_1shot").shots == 1
        with pytest.raises(KeyError):
            get_scenario("no_such_scenario")

    def test_scenarios_by_family_groups(self):
        grouped = scenarios_by_family()
        assert set(grouped) == set(FAMILIES)
        subset = scenarios_by_family(["fmd_1shot", "fmd_20shot"])
        assert set(subset) == {"scarcity"}
        assert len(subset["scarcity"]) == 2


class TestBuildDeterminism:
    @pytest.mark.parametrize("name", ["fmd_5shot_imbalanced",
                                      "fmd_5shot_noise_s3",
                                      "fmd_5shot_streamed"])
    def test_two_builds_bit_identical(self, name, tiny_workspace):
        spec = SCENARIO_GRID[name]
        first = spec.build(tiny_workspace)
        second = spec.build(tiny_workspace)
        assert len(first.stages) == len(second.stages)
        for left, right in zip(first.stages, second.stages):
            np.testing.assert_array_equal(left.labeled_features,
                                          right.labeled_features)
            np.testing.assert_array_equal(left.labeled_labels,
                                          right.labeled_labels)
            np.testing.assert_array_equal(left.unlabeled_features,
                                          right.unlabeled_features)
            np.testing.assert_array_equal(left.test_features,
                                          right.test_features)


class TestImbalance:
    def test_geometric_profile_and_pool_transfer(self, fmd_split):
        ratio = 0.2
        imbalanced = apply_imbalance(fmd_split, ratio, seed=0)
        counts = np.bincount(imbalanced.labeled_labels,
                             minlength=fmd_split.num_classes)
        shots = np.bincount(fmd_split.labeled_labels).max()
        # head keeps every shot, tail keeps max(1, round(shots * ratio))
        assert counts.max() == shots
        assert counts.min() == max(1, round(shots * ratio))
        # dropped labels moved into the unlabeled pool, none lost
        dropped = len(fmd_split.labeled_labels) - len(imbalanced.labeled_labels)
        assert dropped > 0
        assert (len(imbalanced.unlabeled_features)
                == len(fmd_split.unlabeled_features) + dropped)
        # test set untouched
        np.testing.assert_array_equal(imbalanced.test_features,
                                      fmd_split.test_features)

    def test_invalid_ratio(self, fmd_split):
        with pytest.raises(ValueError):
            apply_imbalance(fmd_split, 0.0)


class TestCorruptionTargeting:
    def test_test_only_corruption_leaves_training_data(self, fmd_split):
        axis = CorruptionAxis(kind="gaussian_noise", severity=3,
                              targets=("test",))
        corrupted = apply_corruption(fmd_split, axis, seed=0)
        np.testing.assert_array_equal(corrupted.labeled_features,
                                      fmd_split.labeled_features)
        np.testing.assert_array_equal(corrupted.unlabeled_features,
                                      fmd_split.unlabeled_features)
        assert not np.array_equal(corrupted.test_features,
                                  fmd_split.test_features)

    def test_unlabeled_target_hits_pool(self, fmd_split):
        axis = CorruptionAxis(kind="mixing", severity=2,
                              targets=("unlabeled", "test"))
        corrupted = apply_corruption(fmd_split, axis, seed=0)
        assert not np.array_equal(corrupted.unlabeled_features,
                                  fmd_split.unlabeled_features)
        np.testing.assert_array_equal(corrupted.labeled_features,
                                      fmd_split.labeled_features)

    def test_axis_validation(self):
        with pytest.raises(ValueError):
            CorruptionAxis(kind="nope", severity=1)
        with pytest.raises(ValueError):
            CorruptionAxis(kind="occlusion", severity=9)
        with pytest.raises(ValueError):
            CorruptionAxis(kind="occlusion", severity=1, targets=("train",))


class TestIncrementalStages:
    def test_stages_grow_to_full_task(self, tiny_workspace):
        spec = ScenarioSpec(name="probe_incr", family="incremental",
                            dataset="fmd", shots=5, phases=2)
        task = spec.build(tiny_workspace)
        full = tiny_workspace.make_task_split("fmd", shots=5, split_seed=0)
        assert task.multi_stage and len(task.stages) == 2
        first, last = task.stages
        assert 0 < len(first.classes) < full.num_classes
        assert len(last.classes) == full.num_classes
        # labels remapped to a dense range in every stage
        for stage in task.stages:
            assert set(np.unique(stage.labeled_labels)) == set(
                range(len(stage.classes)))
            # the unlabeled pool keeps future classes (deliberate pollution)
            assert len(stage.unlabeled_features) == len(
                full.unlabeled_features)
        assert len(last.test_labels) == len(full.test_labels)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", family="incremental", phases=1)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", family="incremental", phases=2,
                         stream_chunks=2)


class TestStreamingStages:
    def test_pool_grows_chunkwise(self, tiny_workspace):
        spec = ScenarioSpec(name="probe_stream", family="streaming",
                            dataset="fmd", shots=5, stream_chunks=3)
        task = spec.build(tiny_workspace)
        full = tiny_workspace.make_task_split("fmd", shots=5, split_seed=0)
        sizes = [len(stage.unlabeled_features) for stage in task.stages]
        assert sizes == sorted(sizes) and sizes[0] < sizes[-1]
        assert sizes[-1] == len(full.unlabeled_features)
        for stage in task.stages:  # labeled/test fixed across stages
            np.testing.assert_array_equal(stage.labeled_features,
                                          full.labeled_features)
            np.testing.assert_array_equal(stage.test_features,
                                          full.test_features)

    def test_fraction_shrinks_pool(self, tiny_workspace):
        spec = ScenarioSpec(name="probe_frac", family="streaming",
                            dataset="fmd", shots=5, unlabeled_fraction=0.25)
        task = spec.build(tiny_workspace)
        full = tiny_workspace.make_task_split("fmd", shots=5, split_seed=0)
        assert not task.multi_stage
        assert len(task.final.unlabeled_features) == round(
            0.25 * len(full.unlabeled_features))

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", family="streaming", stream_chunks=1)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", family="streaming", unlabeled_fraction=0.0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", family="not_a_family")


class TestAxesMetadata:
    def test_axes_flatten_every_set_axis(self):
        spec = ScenarioSpec(
            name="probe_axes", family="corruption", shots=1, imbalance=0.5,
            corruption=CorruptionAxis("occlusion", 4, targets=("test",)),
            shift="smartphone")
        axes = spec.axes()
        assert axes == {"shots": 1, "imbalance": 0.5,
                        "corruption": "occlusion", "severity": 4,
                        "corruption_targets": ["test"],
                        "shift": "smartphone"}

    def test_clean_spec_axes_minimal(self, clean_spec):
        assert clean_spec.axes() == {"shots": 5}
