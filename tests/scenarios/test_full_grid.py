"""The full gated sweep (``-m scenarios``) and committed-scoreboard checks.

The full 14-scenario × 2-method sweep is deselected from tier-1 (it is the
``scenarios`` marker; CI runs it via the ``scenario-smoke`` job and the
nightly full sweep).  The scoreboard-consistency tests ARE tier-1: they only
read ``SCENARIOS.json`` and compare it against the in-code grid and gates.
"""

import os

import pytest

from repro.scenarios import (DEFAULT_GATES, SCENARIO_GRID, ScenarioRunner,
                             default_registry, load_scoreboard)

SCOREBOARD_PATH = os.path.join(os.path.dirname(__file__), "..", "..",
                               "SCENARIOS.json")


class TestCommittedScoreboard:
    @pytest.fixture(scope="class")
    def scoreboard(self):
        return load_scoreboard(SCOREBOARD_PATH)

    def test_covers_every_grid_scenario(self, scoreboard):
        assert set(scoreboard["scenarios"]) == set(SCENARIO_GRID)

    def test_recorded_floors_match_registry(self, scoreboard):
        registry = default_registry()
        for name, entry in scoreboard["scenarios"].items():
            recorded = {(g["metric"], g["method"], g["floor"])
                        for g in entry["gates"]}
            in_code = {(g.metric, g.method, g.floor)
                       for g in registry.gates_for(name)}
            assert recorded == in_code, name

    def test_every_recorded_gate_passed(self, scoreboard):
        for name, entry in scoreboard["scenarios"].items():
            assert entry["gates"], name
            assert all(g["passed"] for g in entry["gates"]), name

    def test_recorded_rows_have_zero_fallbacks(self, scoreboard):
        for name, entry in scoreboard["scenarios"].items():
            for method, stats in entry["methods"].items():
                assert stats["fallbacks"] == 0, (name, method)

    def test_recorded_accuracies_clear_their_floors(self, scoreboard):
        # The safety margin the calibration promised: recorded accuracy sits
        # strictly above the floor, not at it.
        for name, entry in scoreboard["scenarios"].items():
            for gate in entry["gates"]:
                if gate["metric"] == "accuracy":
                    recorded = entry["methods"][gate["method"]]["accuracy"]
                    assert min(recorded) > gate["floor"], name


@pytest.mark.scenarios
class TestFullGrid:
    def test_full_grid_passes_every_gate(self, tiny_workspace):
        runner = ScenarioRunner(tiny_workspace)
        rows = runner.run_grid(list(SCENARIO_GRID.values()),
                               methods=("taglets", "finetune"), seeds=(0,))
        reports = default_registry().assert_all(rows, require_all=True)
        assert len(reports) == len(DEFAULT_GATES)
        assert all(row.fallbacks == 0 for row in rows)
