"""Pruning study: how much does TAGLETS rely on closely-related auxiliary data?

The paper simulates the scenario where only distantly-related auxiliary data
is available by pruning SCADS around the target classes (Section 4.3):
prune level 0 removes each target class and its descendants from the
selectable pool; level 1 additionally removes the parent's whole subtree.

This example reproduces the Figure 5/6-style analysis on the 1-shot FMD task:
for each pruning level it reports which concepts get selected, the accuracy
of each module, the ensemble, and the end model.

Run with::

    python examples/pruning_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core import Controller, ControllerConfig, Task
from repro.workspace import build_workspace

PRUNE_LEVELS = (None, 0, 1)


def main() -> None:
    workspace = build_workspace(scale="small", seed=0)
    split = workspace.make_task_split("fmd", shots=1, split_seed=0)
    backbone = workspace.backbone("resnet50")
    test_x, test_y = split.test_features, split.test_labels

    for level in PRUNE_LEVELS:
        label = "no pruning" if level is None else f"prune level {level}"
        print(f"\n=== {label} ===")
        task = Task.from_split(split, scads=workspace.scads, backbone=backbone)
        controller = Controller(config=ControllerConfig(prune_level=level, seed=0))

        selection = controller.select_auxiliary_data(task)
        plastic_related = selection.per_target_concepts.get("plastic", [])
        print("  concepts selected for 'plastic':", ", ".join(plastic_related))
        distances = [workspace.world.prototype_distance("plastic", concept)
                     for concept in plastic_related]
        if distances:
            print(f"  mean visual distance of those concepts: {np.mean(distances):.2f}")

        result = controller.run(task)
        module_accuracies = result.module_accuracies(test_x, test_y)
        for name, accuracy in module_accuracies.items():
            print(f"  module {name:>10}: {accuracy * 100:5.1f}%")
        average = np.mean(list(module_accuracies.values()))
        ensemble = result.ensemble_accuracy(test_x, test_y)
        end_model = result.end_model_accuracy(test_x, test_y)
        print(f"  average module   : {average * 100:5.1f}%")
        print(f"  ensemble         : {ensemble * 100:5.1f}%  "
              f"(+{(ensemble - average) * 100:.1f} over the average module)")
        print(f"  end model        : {end_model * 100:5.1f}%")


if __name__ == "__main__":
    main()
