"""From training to an answered HTTP request in one script.

The full deployment lifecycle of the reproduction:

1. build a (reduced) workspace and train the TAGLETS pipeline,
2. export the distilled end model *and* the taglet ensemble as versioned
   servable artifacts (via the ``Controller`` export hooks),
3. register both in a :class:`~repro.serve.Server` behind the dynamic
   micro-batching engine (two workers) and start the JSON/HTTP endpoint,
4. fire concurrent requests at both models — the ensemble ones carrying a
   priority and a deadline — and verify the served predictions agree with
   offline inference (end model) and offline taglet voting (ensemble),
5. stand the same artifact up again as a 2-process **fleet**
   (:class:`~repro.serve.ServingFleet`: worker processes behind the
   routing front end), kill one worker mid-traffic, and verify that no
   request fails, predictions stay bit-identical, and the replica
   respawns — the scale-out path on the unchanged client API.

Run with::

    python examples/serve_quickstart.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
import urllib.request

import numpy as np

from repro.core import Controller, ControllerConfig, Task
from repro.distill import EndModelConfig
from repro.kg import GraphSpec
from repro.modules import MultiTaskConfig, MultiTaskModule, TransferConfig, TransferModule
from repro.serve import BatchingConfig, Server, load_servable, start_http_server
from repro.serve.batching import run_at_quantum
from repro.synth import WorldSpec
from repro.workspace import Workspace, WorkspaceSpec


def main() -> None:
    start = time.time()

    # ---- 1. train --------------------------------------------------------
    print("Building a reduced workspace and training TAGLETS...")
    spec = WorkspaceSpec(graph=GraphSpec(num_filler_concepts=300, seed=0),
                         world=WorldSpec(seed=0), scads_images_per_concept=30,
                         seed=0)
    workspace = Workspace(spec)
    split = workspace.make_task_split("fmd", shots=5, split_seed=0)
    task = Task.from_split(split, scads=workspace.scads,
                           backbone=workspace.backbone("resnet50"),
                           wanted_num_related_class=3,
                           images_per_related_class=8)

    # ---- 2. export (the Controller hooks write both artifacts) -----------
    artifact_dir = tempfile.mkdtemp(prefix="taglets-artifact-")
    ensemble_dir = artifact_dir + "-ensemble"
    config = ControllerConfig(end_model=EndModelConfig(epochs=20),
                              dtype="float32", export_path=artifact_dir,
                              export_ensemble_path=ensemble_dir,
                              seed=0)
    modules = [MultiTaskModule(MultiTaskConfig(epochs=10)),
               TransferModule(TransferConfig(aux_epochs=10, target_epochs=25))]
    result = Controller(modules=modules, config=config).run(task)
    accuracy = result.end_model_accuracy(split.test_features, split.test_labels)
    print(f"Trained and exported the end model "
          f"(test accuracy {accuracy * 100:.1f}%) to {artifact_dir}")
    print(f"Exported the {len(result.taglets)}-member taglet ensemble "
          f"to {ensemble_dir}")

    # ---- 3. serve --------------------------------------------------------
    server = Server(batching=BatchingConfig(max_batch_size=32,
                                            max_latency_ms=5,
                                            num_workers=2))
    version = server.load("fmd", artifact_dir)
    ens_version = server.load("fmd-ensemble", ensemble_dir)
    httpd, _ = start_http_server(server, port=0)
    port = httpd.server_address[1]
    print(f"Serving fmd@{version} and fmd-ensemble@{ens_version} "
          f"on http://127.0.0.1:{port} (2 batcher workers per model)")

    # ---- 4. query (concurrent clients over HTTP) -------------------------
    test_x = split.test_features
    responses: list = [None] * len(test_x)
    ens_responses: list = [None] * len(test_x)
    errors: list = []

    def client(i: int) -> None:
        try:
            for slot, payload in (
                    (responses, {"model": "fmd",
                                 "inputs": [test_x[i].tolist()]}),
                    # Ensemble requests ride the priority lane with a
                    # generous deadline (expired requests would get 504).
                    (ens_responses, {"model": "fmd-ensemble",
                                     "inputs": [test_x[i].tolist()],
                                     "priority": 5, "deadline_ms": 30_000})):
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/predict",
                    data=json.dumps(payload).encode("utf-8"),
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(request, timeout=30) as response:
                    slot[i] = json.loads(response.read())
        except Exception as error:  # pragma: no cover - smoke failure path
            errors.append((i, error))

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(len(test_x))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, f"requests failed: {errors[:3]}"

    # Served answers must agree with offline inference on the same inputs.
    servable = load_servable(artifact_dir)
    offline = servable.predict_proba(test_x, batch_size=32).argmax(axis=1)
    served = np.array([r["predictions"][0] for r in responses])
    assert np.array_equal(served, offline), "served != offline predictions"
    served_accuracy = float((served == split.test_labels).mean())

    # Served ensemble votes must agree with offline taglet voting at the
    # serving quantum (the ensemble's own bit-identity guarantee).  The
    # pipeline trained under float32, so offline voting runs under the same
    # engine dtype — exactly as it did during pseudo-labeling.
    from repro.nn import default_dtype
    with default_dtype("float32"):
        ens_offline = run_at_quantum(
            lambda rows: result.ensemble.predict_proba(rows, batch_size=None),
            np.asarray(test_x, dtype=np.float64), 32).argmax(axis=1)
    ens_served = np.array([r["predictions"][0] for r in ens_responses])
    assert np.array_equal(ens_served, ens_offline), \
        "served ensemble != offline voting"
    ens_accuracy = float((ens_served == split.test_labels).mean())

    stats = server.stats()[f"fmd@{version}"]
    ens_stats = server.stats()[f"fmd-ensemble@{ens_version}"]
    print(f"\n--- served {2 * len(test_x)} concurrent requests ---")
    print(f"  end model predictions identical to offline inference: True")
    print(f"  ensemble votes identical to offline taglet voting   : True")
    print(f"  end model accuracy  : {served_accuracy * 100:.1f}%")
    print(f"  ensemble accuracy   : {ens_accuracy * 100:.1f}%")
    print(f"  fused forward passes: {stats['batches']} end model "
          f"(mean batch {stats['mean_batch_size']}), "
          f"{ens_stats['batches']} ensemble "
          f"(mean batch {ens_stats['mean_batch_size']})")
    print(f"  example response    : {responses[0]}")

    httpd.shutdown()
    server.close()

    # ---- 5. scale out: the same artifact as a 2-process fleet ------------
    from repro.serve import FleetConfig, ServingFleet, replicated_specs

    print("\nSpawning a 2-process fleet over the same artifact...")
    specs = replicated_specs([("fmd", artifact_dir)], 2)
    fleet_config = FleetConfig(batching=BatchingConfig(max_batch_size=32,
                                                       max_latency_ms=5))
    with ServingFleet(specs, fleet_config) as fleet:
        victim = fleet.replica_ids()[0]
        fleet_errors: list = []
        fleet_served: list = [None] * len(test_x)

        def fleet_client(indices) -> None:
            for i in indices:
                try:
                    response = fleet.router.predict(test_x[i], model="fmd")
                    fleet_served[i] = response["predictions"][0]
                except Exception as error:  # pragma: no cover - smoke path
                    fleet_errors.append((i, error))
                if i == 8:      # chaos: kill a worker while traffic flows
                    fleet.kill_replica(victim)

        fleet_threads = [threading.Thread(target=fleet_client,
                                          args=(range(k, len(test_x), 4),))
                         for k in range(4)]
        for thread in fleet_threads:
            thread.start()
        for thread in fleet_threads:
            thread.join()
        assert not fleet_errors, f"fleet requests failed: {fleet_errors[:3]}"
        assert np.array_equal(np.array(fleet_served), offline), \
            "fleet served != offline predictions"
        respawned = fleet.router.wait_healthy(2, timeout=30)
        assert respawned, "killed replica did not respawn healthy"
        print(f"  served {len(test_x)} requests across 2 worker processes, "
              f"killed {victim} mid-traffic:")
        print(f"  zero failed requests, predictions identical to offline, "
              f"replica respawned on its original port")

    print(f"\nDone in {time.time() - start:.1f}s.")


if __name__ == "__main__":
    main()
