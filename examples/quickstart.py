"""Quickstart: build a servable classifier from 5 labels per class.

This mirrors the paper's artifact demo: a small target task with very little
labeled data, a pool of unlabeled data, and a SCADS full of auxiliary data.
TAGLETS trains its four modules, ensembles them into pseudo labels, distills
a single end model, and (as in the demo) should clearly beat plain
fine-tuning of the same backbone.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro.baselines import BaselineInput, FineTuningBaseline
from repro.core import Controller, Task
from repro.workspace import build_workspace


def main() -> None:
    start = time.time()
    print("Building the workspace (knowledge graph, visual world, SCADS, backbones)...")
    workspace = build_workspace(scale="small", seed=0)

    # A 5-shot split of the FMD material-recognition task.
    split = workspace.make_task_split("fmd", shots=5, split_seed=0)
    print(f"Task: {split.dataset_name} with {split.num_classes} classes, "
          f"{len(split.labeled_features)} labeled / "
          f"{len(split.unlabeled_features)} unlabeled images")

    backbone = workspace.backbone("resnet50")
    task = Task.from_split(split, scads=workspace.scads, backbone=backbone)

    print("Running TAGLETS (modules -> ensemble -> distilled end model)...")
    controller = Controller()
    result = controller.run(task)

    print("Running the fine-tuning baseline for comparison...")
    baseline = FineTuningBaseline().train(BaselineInput(
        labeled_features=split.labeled_features,
        labeled_labels=split.labeled_labels,
        unlabeled_features=split.unlabeled_features,
        num_classes=split.num_classes, backbone=backbone, seed=0))

    test_x, test_y = split.test_features, split.test_labels
    print("\n--- results (top-1 accuracy on the held-out test set) ---")
    for name, accuracy in result.module_accuracies(test_x, test_y).items():
        print(f"  module {name:>10}: {accuracy * 100:5.1f}%")
    print(f"  taglet ensemble : {result.ensemble_accuracy(test_x, test_y) * 100:5.1f}%")
    print(f"  TAGLETS end model: {result.end_model_accuracy(test_x, test_y) * 100:5.1f}%")
    print(f"  fine-tuning      : {baseline.accuracy(test_x, test_y) * 100:5.1f}%")
    print(f"\nDone in {time.time() - start:.1f}s. The end model is a single "
          f"{result.end_model.num_parameters():,}-parameter classifier ready to serve.")


if __name__ == "__main__":
    main()
