"""Extending TAGLETS with a custom training module.

The module framework is deliberately open-ended (Section 3.2: "This modular
framework is extensible, as other methods can be incorporated on top of the
ones we develop here").  This example adds a *prototype module*: it embeds
the selected auxiliary images and the labeled shots with the frozen backbone
and classifies by nearest class prototype — no gradient training at all.

The custom module is then ensembled with the built-in modules through the
standard :class:`~repro.core.Controller`.

Run with::

    python examples/custom_module.py
"""

from __future__ import annotations

import numpy as np

from repro.backbones import ClassificationModel
from repro.core import Controller, Task
from repro.modules import DEFAULT_MODULES
from repro.modules.base import ModuleInput, Taglet, TrainingModule
from repro.nn import Tensor
from repro.workspace import build_workspace


class PrototypeTaglet(Taglet):
    """Nearest-prototype classifier in the frozen backbone's feature space."""

    def __init__(self, name: str, encoder, prototypes: np.ndarray,
                 temperature: float = 5.0):
        super().__init__(name)
        self.encoder = encoder
        self.prototypes = prototypes
        self.temperature = temperature

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        embedded = self.encoder(Tensor(np.asarray(features, dtype=np.float64))).data
        embedded = embedded / np.maximum(np.linalg.norm(embedded, axis=1,
                                                        keepdims=True), 1e-12)
        logits = self.temperature * (embedded @ self.prototypes.T)
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)


class PrototypeModule(TrainingModule):
    """Build one prototype per target class from labeled shots + auxiliary data."""

    name = "prototype"

    def train(self, data: ModuleInput) -> Taglet:
        data.validate()
        encoder = data.backbone.instantiate()
        encoder.eval()

        def embed(batch: np.ndarray) -> np.ndarray:
            out = encoder(Tensor(np.asarray(batch, dtype=np.float64))).data
            return out / np.maximum(np.linalg.norm(out, axis=1, keepdims=True), 1e-12)

        prototypes = np.zeros((data.num_classes, data.backbone.feature_dim))
        labeled_embedded = embed(data.labeled_features)
        for class_index, spec in enumerate(data.classes):
            members = [labeled_embedded[data.labeled_labels == class_index]]
            # Auxiliary images selected for this class refine the prototype.
            if data.auxiliary is not None and not data.auxiliary.is_empty():
                related = data.auxiliary.per_target_concepts.get(spec.name, [])
                for concept in related:
                    if concept in data.auxiliary.concepts:
                        aux_label = data.auxiliary.concepts.index(concept)
                        mask = data.auxiliary.labels == aux_label
                        members.append(embed(data.auxiliary.features[mask]))
            stacked = np.concatenate([m for m in members if len(m)], axis=0)
            prototype = stacked.mean(axis=0)
            prototypes[class_index] = prototype / max(np.linalg.norm(prototype), 1e-12)
        return PrototypeTaglet(self.name, encoder, prototypes)


def main() -> None:
    workspace = build_workspace(scale="small", seed=0)
    split = workspace.make_task_split("fmd", shots=1, split_seed=0)
    task = Task.from_split(split, scads=workspace.scads,
                           backbone=workspace.backbone("resnet50"))

    controller = Controller(modules=[*DEFAULT_MODULES, PrototypeModule()])
    result = controller.run(task)

    test_x, test_y = split.test_features, split.test_labels
    print("--- 1-shot FMD with an extra custom module in the ensemble ---")
    for name, accuracy in result.module_accuracies(test_x, test_y).items():
        marker = "  <- custom" if name == "prototype" else ""
        print(f"  module {name:>10}: {accuracy * 100:5.1f}%{marker}")
    print(f"  ensemble         : {result.ensemble_accuracy(test_x, test_y) * 100:5.1f}%")
    print(f"  end model        : {result.end_model_accuracy(test_x, test_y) * 100:5.1f}%")


if __name__ == "__main__":
    main()
