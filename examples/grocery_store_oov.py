"""Grocery Store: handling target classes missing from the knowledge graph.

The Grocery Store task contains two classes — ``oatghurt`` and ``soygurt`` —
that have no counterpart in ConceptNet.  The paper's Example 3.2 handles this
by adding new nodes to SCADS and linking them to existing, characterizing
concepts (yoghurt, carton, oat/soy milk); their SCADS embeddings are then
computed from the neighbourhood alone (retrofitting with alpha = 0).

This example walks through that workflow explicitly:

1. build the workspace and inspect which grocery classes are out-of-vocabulary,
2. align them with SCADS (add nodes + neighbour-average embeddings),
3. look at which auxiliary concepts SCADS now selects for them,
4. train TAGLETS on the 1-shot Grocery Store task.

Run with::

    python examples/grocery_store_oov.py
"""

from __future__ import annotations

from repro.core import Controller, Task
from repro.scads import align_target_classes
from repro.workspace import build_workspace


def main() -> None:
    workspace = build_workspace(scale="small", seed=0)

    # Building the dataset through the workspace aligns OOV classes already;
    # here we do it explicitly to show the moving parts.
    dataset = workspace.dataset("grocery_store")
    oov_classes = [spec for spec in dataset.classes if spec.concept is None]
    print("Out-of-vocabulary target classes:",
          ", ".join(spec.name for spec in oov_classes))
    for spec in oov_classes:
        print(f"  {spec.name} will be linked to: {', '.join(spec.anchors)}")

    added = align_target_classes(workspace.scads, workspace.world, dataset.classes)
    if added:
        print("Newly added SCADS nodes:", ", ".join(added))
    else:
        print("SCADS already contains nodes for every target class "
              "(the workspace aligned them when the dataset was built).")

    # What does SCADS retrieve for the new classes?
    selection = workspace.scads.select(dataset.classes, num_related_concepts=5,
                                       images_per_concept=10)
    for spec in oov_classes:
        related = selection.per_target_concepts.get(spec.name, [])
        print(f"Auxiliary concepts selected for {spec.name}: {', '.join(related)}")

    # Train TAGLETS on the 1-shot task (the dataset ships a fixed test set).
    split = workspace.make_task_split("grocery_store", shots=1, split_seed=0)
    task = Task.from_split(split, scads=workspace.scads,
                           backbone=workspace.backbone("resnet50"))
    result = Controller().run(task)

    test_x, test_y = split.test_features, split.test_labels
    print("\n--- 1-shot Grocery Store results ---")
    for name, accuracy in result.module_accuracies(test_x, test_y).items():
        print(f"  module {name:>10}: {accuracy * 100:5.1f}%")
    print(f"  TAGLETS end model: {result.end_model_accuracy(test_x, test_y) * 100:5.1f}%")

    # Per-class check of the two OOV classes.
    predictions = result.end_model.predict(test_x)
    for spec in oov_classes:
        class_index = [c.name for c in split.classes].index(spec.name)
        mask = test_y == class_index
        class_accuracy = float((predictions[mask] == class_index).mean())
        print(f"  accuracy on {spec.name!r} test images: {class_accuracy * 100:.1f}%")


if __name__ == "__main__":
    main()
